package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"mime"
	"net/http"
	"strconv"
	"time"

	"gsim"
)

// decode parses a JSON request body into v, translating syntax failures
// into ErrBadOptions so they map to 400.
func decode(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			return err // bodyStatus maps it to 413, not 400
		}
		return fmt.Errorf("%w: decoding request body: %v", gsim.ErrBadOptions, err)
	}
	return nil
}

// bodyStatus maps a request-body error: over the MaxBodyBytes cap is 413
// (the client must learn the limit, not retry a "malformed" payload),
// anything else is the caller's status (normally 400).
func bodyStatus(err error, fallback int) int {
	var tooBig *http.MaxBytesError
	if errors.As(err, &tooBig) {
		return http.StatusRequestEntityTooLarge
	}
	return fallback
}

// cacheHeader reports the cache outcome of a request: "hit", "miss", or
// "off" when the server runs without a cache.
const cacheHeader = "X-Gsim-Cache"

// traced reports whether the request asked for the per-stage trace echo
// (?debug=trace). Traced requests run the fine per-entry stage split,
// bypass the result cache (their body carries a stages block a cached
// copy must not serve to untraced callers — and tracing a cached hit
// would time nothing) and report the breakdown in the response.
func traced(r *http.Request) bool {
	return r.URL.Query().Get("debug") == "trace"
}

// cached wraps the render step of a cacheable endpoint. On a hit the
// stored body is served verbatim; on a miss render runs and its body is
// stored under the epoch the search actually snapshotted (render returns
// it), so a result computed while a mutation raced the request is stored
// under the post-mutation epoch — the response's epoch label, the cache
// version and the scanned snapshot always agree. With caching disabled
// the key is never even computed (keyFn is lazy). bypass skips the cache
// in both directions (the ?debug=trace path). The outcome lands in the
// response header and the request's reqInfo, which feeds the
// hit-vs-miss latency split (see instrument).
func (s *Server) cached(w http.ResponseWriter, r *http.Request, bypass bool, keyFn func() string, render func() ([]byte, uint64, int, error)) {
	ri := info(r)
	note := func(outcome string) {
		w.Header().Set(cacheHeader, outcome)
		if ri != nil && outcome != "bypass" {
			ri.cache = outcome
		}
	}
	var key string
	if s.cache.Enabled() && !bypass {
		key = keyFn()
		if body, ok := s.cache.Get(s.db.Epoch(), key); ok {
			note("hit")
			writeJSONBytes(w, http.StatusOK, body)
			return
		}
	}
	body, epoch, status, err := render()
	if err != nil {
		writeError(w, status, err)
		return
	}
	switch {
	case bypass:
		note("bypass")
	case s.cache.Enabled():
		s.cache.Put(epoch, key, body)
		note("miss")
	default:
		note("off")
	}
	writeJSONBytes(w, http.StatusOK, body)
}

// noteResult stashes a search outcome on the request's reqInfo for the
// slow-query log.
func noteResult(r *http.Request, stages *gsim.StageStats, scanned, matched int) {
	if ri := info(r); ri != nil {
		ri.stages = stages
		ri.scanned = scanned
		ri.matched = matched
	}
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	var req searchRequest
	if err := decode(r, &req); err != nil {
		writeError(w, bodyStatus(err, http.StatusBadRequest), err)
		return
	}
	opt, echo, err := s.searchOptions(req.wireOptions)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	opt.Trace = traced(r)
	keyFn := func() string { return fingerprint("search", echo, []wireGraph{req.Graph}) }
	s.cached(w, r, opt.Trace, keyFn, func() ([]byte, uint64, int, error) {
		q, err := s.buildQuery(req.Graph)
		if err != nil {
			return nil, 0, http.StatusBadRequest, err
		}
		res, err := s.db.SearchContext(r.Context(), q, opt)
		if err != nil {
			return nil, 0, searchStatus(err), err
		}
		noteResult(r, &res.Stages, res.Scanned, len(res.Matches))
		body, err := json.Marshal(toResponse(res, echo))
		if err != nil {
			return nil, 0, http.StatusInternalServerError, err
		}
		return body, res.Epoch, http.StatusOK, nil
	})
}

func (s *Server) handleTopK(w http.ResponseWriter, r *http.Request) {
	var req searchRequest
	if err := decode(r, &req); err != nil {
		writeError(w, bodyStatus(err, http.StatusBadRequest), err)
		return
	}
	opt, echo, err := s.topKOptions(req.wireOptions)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	opt.Trace = traced(r)
	keyFn := func() string { return fingerprint("topk", echo, []wireGraph{req.Graph}) }
	s.cached(w, r, opt.Trace, keyFn, func() ([]byte, uint64, int, error) {
		q, err := s.buildQuery(req.Graph)
		if err != nil {
			return nil, 0, http.StatusBadRequest, err
		}
		res, err := s.db.SearchTopKContext(r.Context(), q, opt)
		if err != nil {
			return nil, 0, searchStatus(err), err
		}
		noteResult(r, &res.Stages, res.Scanned, len(res.Matches))
		body, err := json.Marshal(toResponse(res, echo))
		if err != nil {
			return nil, 0, http.StatusInternalServerError, err
		}
		return body, res.Epoch, http.StatusOK, nil
	})
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req batchRequest
	if err := decode(r, &req); err != nil {
		writeError(w, bodyStatus(err, http.StatusBadRequest), err)
		return
	}
	if len(req.Graphs) == 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("%w: batch holds no graphs", gsim.ErrBadOptions))
		return
	}
	if len(req.Graphs) > s.cfg.MaxBatch {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("%w: batch holds %d graphs, limit %d", gsim.ErrBadOptions, len(req.Graphs), s.cfg.MaxBatch))
		return
	}
	opt, echo, err := s.searchOptions(req.wireOptions)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	opt.Trace = traced(r)
	keyFn := func() string { return fingerprint("batch", echo, req.Graphs) }
	s.cached(w, r, opt.Trace, keyFn, func() ([]byte, uint64, int, error) {
		queries := make([]*gsim.Query, len(req.Graphs))
		for i, wg := range req.Graphs {
			q, err := s.buildQuery(wg)
			if err != nil {
				return nil, 0, http.StatusBadRequest, err
			}
			queries[i] = q
		}
		results, err := s.db.SearchBatch(r.Context(), queries, opt)
		if err != nil {
			return nil, 0, searchStatus(err), err
		}
		matched := 0
		for _, res := range results {
			matched += len(res.Matches)
		}
		// The stage breakdown is the batch's shared scan, identical on
		// every Result.
		noteResult(r, &results[0].Stages, results[0].Scanned, matched)
		resp := batchResponse{Epoch: results[0].Epoch, Results: make([]searchResponse, len(results))}
		for i, res := range results {
			resp.Results[i] = toResponse(res, echo)
		}
		body, err := json.Marshal(resp)
		if err != nil {
			return nil, 0, http.StatusInternalServerError, err
		}
		return body, resp.Epoch, http.StatusOK, nil
	})
}

// handleStream answers a threshold query as NDJSON: one match per line as
// the scan produces it (unordered, backed by SearchStream), then one
// trailer record reporting how the scan went: done, entries scanned,
// matches, elapsed wall time, the snapshot epoch and the prefilter's
// prune count — the same telemetry a unary search reports, so a
// streaming client is not blind to scan cost. With ?debug=trace the
// trailer additionally carries the per-stage breakdown. Errors before
// the first match are proper HTTP errors; errors mid-stream arrive in
// the trailer, since the 200 header is already on the wire. A client
// closing the connection cancels the scan through the request context.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	var req searchRequest
	if err := decode(r, &req); err != nil {
		writeError(w, bodyStatus(err, http.StatusBadRequest), err)
		return
	}
	opt, _, err := s.searchOptions(req.wireOptions)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	opt.Trace = traced(r)
	q, err := s.buildQuery(req.Graph)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	start := time.Now()
	wrote := false
	matches := 0
	st, err := s.db.SearchStreamStats(r.Context(), q, opt, func(m gsim.Match) bool {
		if !wrote {
			w.Header().Set("Content-Type", "application/x-ndjson")
			w.WriteHeader(http.StatusOK)
			wrote = true
		}
		if err := enc.Encode(wireMatch{Index: m.Index, Name: m.Name, Score: m.Score}); err != nil {
			return false // client went away; the context cancels the scan too
		}
		matches++
		if flusher != nil {
			flusher.Flush()
		}
		return true
	})
	if err != nil && !wrote {
		writeError(w, searchStatus(err), err)
		return
	}
	if !wrote {
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(http.StatusOK)
	}
	noteResult(r, &st.Stages, st.Scanned, matches)
	trailer := streamTrailer{
		Done:      err == nil,
		Scanned:   st.Scanned,
		Matches:   matches,
		Pruned:    st.Stages.Pruned,
		Epoch:     st.Epoch,
		ElapsedNS: time.Since(start).Nanoseconds(),
		Stages:    toWireStages(st.Stages),
	}
	if err != nil {
		trailer.Error = err.Error()
	}
	enc.Encode(trailer)
}

// handleDelete removes one stored graph by ID (DELETE /v1/graphs/{id}).
// The deletion bumps the database epoch — every cached result is
// invalidated and the next search no longer sees the graph; its branch
// refcounts are released for dictionary compaction. Unknown or already
// deleted IDs answer 404.
func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("%w: graph id %q is not an integer", gsim.ErrBadOptions, r.PathValue("id")))
		return
	}
	if err := s.db.Delete(id); err != nil {
		writeMutationError(w, err, http.StatusInternalServerError)
		return
	}
	writeJSON(w, http.StatusOK, deleteResponse{Deleted: 1, Graphs: s.db.Len(), Epoch: s.db.Epoch()})
}

// ingestGraphs is the /v1/graphs JSON body.
type ingestGraphs struct {
	Graphs []wireGraph `json:"graphs"`
}

// handleIngest stores graphs: a JSON body {"graphs": [...]} or raw .gsim
// text (Content-Type text/plain). A JSON graph carrying "id" updates the
// stored graph with that ID in place (the re-POST form of update) instead
// of inserting; inserts and updates land as one atomic batch. Every
// mutation bumps the database epoch, which invalidates every cached
// result — observable as the epoch field in subsequent responses and the
// invalidation counter in /v1/stats.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	ct := r.Header.Get("Content-Type")
	if mt, _, err := mime.ParseMediaType(ct); err == nil {
		ct = mt
	}
	switch ct {
	case "text/plain", "application/x-gsim":
		n, err := s.db.LoadText(r.Body)
		if err != nil {
			writeMutationError(w, fmt.Errorf("parsing .gsim text: %w", err), bodyStatus(err, http.StatusBadRequest))
			return
		}
		writeJSON(w, http.StatusOK, ingestResponse{Stored: n, Graphs: s.db.Len(), Epoch: s.db.Epoch()})
	case "", "application/json":
		var req ingestGraphs
		if err := decode(r, &req); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		if len(req.Graphs) == 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("%w: no graphs in request", gsim.ErrBadOptions))
			return
		}
		if len(req.Graphs) > s.cfg.MaxBatch {
			writeError(w, http.StatusBadRequest,
				fmt.Errorf("%w: %d graphs in request, limit %d", gsim.ErrBadOptions, len(req.Graphs), s.cfg.MaxBatch))
			return
		}
		// Build first so a malformed graph rejects the request before
		// anything is stored, then apply the whole batch atomically:
		// like the text path, a concurrent search sees none or all.
		muts := make([]gsim.BuilderMutation, len(req.Graphs))
		updated := 0
		for i, wg := range req.Graphs {
			b, err := s.buildStored(wg)
			if err != nil {
				writeError(w, http.StatusBadRequest, err)
				return
			}
			muts[i] = gsim.BuilderMutation{Builder: b, UpdateID: wg.ID}
			if wg.ID != nil {
				updated++
			}
		}
		ids, err := s.db.CommitAll(muts)
		if err != nil {
			writeMutationError(w, err, http.StatusBadRequest)
			return
		}
		writeJSON(w, http.StatusOK, ingestResponse{
			Stored:  len(muts) - updated,
			Updated: updated,
			Graphs:  s.db.Len(),
			Epoch:   s.db.Epoch(),
			IDs:     ids,
		})
	default:
		writeError(w, http.StatusUnsupportedMediaType,
			fmt.Errorf("unsupported Content-Type %q (use application/json or text/plain)", ct))
	}
}
