package exper

import (
	"bytes"
	"strings"
	"testing"
)

// tinyOpt keeps experiment smoke tests fast: minimum dataset volumes, two
// queries, small synthetic graphs.
func tinyOpt() Options {
	return Options{
		Scale:          0.002, // clamps to the 40-graph floor per real set
		SynSizes:       []int{300},
		SynGraphs:      8,
		MaxQueries:     2,
		SamplePairs:    1500,
		LSAPSynCap:     200, // force the OOM cell
		BaselineSynCap: 5000,
	}
}

func TestRunRejectsUnknownID(t *testing.T) {
	var buf bytes.Buffer
	if err := Run("fig99", tinyOpt(), &buf); err == nil {
		t.Fatal("unknown id accepted")
	}
	if err := Run("table9", tinyOpt(), &buf); err == nil {
		t.Fatal("unknown table accepted")
	}
}

func TestIDsCoverPaperArtifacts(t *testing.T) {
	ids := IDs()
	want := map[string]bool{
		"table3": true, "table4": true, "table5": true,
		"fig5": true, "fig7": true, "fig10": true, "fig21": true,
		"fig29": true, "fig31": true, "fig42": true,
	}
	have := map[string]bool{}
	for _, id := range ids {
		have[id] = true
	}
	for id := range want {
		if !have[id] {
			t.Fatalf("IDs() missing %s", id)
		}
	}
	if have["fig30"] {
		t.Fatal("fig30 does not exist in the paper")
	}
}

func TestFigureMappingHelpers(t *testing.T) {
	if figDataset("fig12", 10) != "grec" {
		t.Fatal("fig12 must map to GREC")
	}
	if figDataset("fig17", 14) != "aasd" {
		t.Fatal("fig17 must map to AASD")
	}
	if synTau("fig33", 31) != 25 {
		t.Fatal("fig33 must map to tau=25")
	}
	if !isBetween("fig26", 26, 29) || isBetween("fig26", 27, 29) || isBetween("table3", 1, 99) {
		t.Fatal("isBetween broken")
	}
}

func TestTableFprintAligns(t *testing.T) {
	tbl := &Table{
		ID:     "t",
		Title:  "demo",
		Header: []string{"a", "bbbb"},
		Rows:   [][]string{{"xxxxx", "1"}, {"y", "22"}},
		Notes:  []string{"hello"},
	}
	var buf bytes.Buffer
	tbl.Fprint(&buf)
	out := buf.String()
	if !strings.Contains(out, "== t: demo ==") {
		t.Fatalf("missing banner:\n%s", out)
	}
	if !strings.Contains(out, "note: hello") {
		t.Fatal("missing note")
	}
	lines := strings.Split(out, "\n")
	if !strings.HasPrefix(lines[1], "a    ") {
		t.Fatalf("header not padded: %q", lines[1])
	}
}

func TestTablesAndPriors(t *testing.T) {
	var buf bytes.Buffer
	r := newRunner(tinyOpt().withDefaults())
	// Restrict the real sets to the two smallest to keep the test quick.
	r.realSets = []string{"finger", "grec"}
	for _, id := range []string{"table3", "table4", "table5", "fig5", "fig6"} {
		tables, err := r.run(id)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		for _, tbl := range tables {
			if len(tbl.Rows) == 0 {
				t.Fatalf("%s: empty table", id)
			}
			tbl.Fprint(&buf)
		}
	}
	out := buf.String()
	for _, want := range []string{"finger", "grec", "syn1-0K", "phi", "tau\\v"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestFigEffectRealShape(t *testing.T) {
	r := newRunner(tinyOpt().withDefaults())
	r.realSets = []string{"grec"}
	tables, err := r.run("fig16") // recall vs tau on GREC
	if err != nil {
		t.Fatal(err)
	}
	tbl := tables[0]
	if len(tbl.Rows) != 10 {
		t.Fatalf("want 10 tau rows, got %d", len(tbl.Rows))
	}
	// Column 1 is LSAP: a true lower bound ⇒ recall ≡ 1 (the paper's
	// observation in Section VII-C).
	for _, row := range tbl.Rows {
		if row[1] != "1.000" {
			t.Fatalf("LSAP recall %s at tau %s; want 1.000", row[1], row[0])
		}
	}
}

func TestFigVariantRuns(t *testing.T) {
	r := newRunner(tinyOpt().withDefaults())
	tables, err := r.run("fig24") // GBDA vs V1 on GREC
	if err != nil {
		t.Fatal(err)
	}
	if len(tables[0].Header) != 5 { // tau + GBDA + 3 alphas
		t.Fatalf("header = %v", tables[0].Header)
	}
	tables, err = r.run("fig28") // GBDA vs V2 on GREC
	if err != nil {
		t.Fatal(err)
	}
	if len(tables[0].Header) != 4 { // tau + GBDA + 2 weights
		t.Fatalf("header = %v", tables[0].Header)
	}
}

func TestFigTimeSynMarksOOM(t *testing.T) {
	r := newRunner(tinyOpt().withDefaults())
	tables, err := r.run("fig8")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	tables[0].Fprint(&buf)
	if !strings.Contains(buf.String(), "OOM") {
		t.Fatalf("LSAP cap did not produce an OOM cell:\n%s", buf.String())
	}
}

func TestFigEffectSynRuns(t *testing.T) {
	r := newRunner(tinyOpt().withDefaults())
	tables, err := r.run("fig35") // recall vs size, tau=15
	if err != nil {
		t.Fatal(err)
	}
	tbl := tables[0]
	if len(tbl.Rows) != 1 { // one configured size
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	if tbl.Rows[0][1] != "OOM" {
		t.Fatalf("LSAP cell = %q, want OOM under the test cap", tbl.Rows[0][1])
	}
}

func TestExtensionExperiments(t *testing.T) {
	r := newRunner(tinyOpt().withDefaults())
	for _, id := range ExtensionIDs() {
		tables, err := r.run(id)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(tables) == 0 {
			t.Fatalf("%s produced no tables", id)
		}
		for _, tbl := range tables {
			if len(tbl.Rows) == 0 {
				t.Fatalf("%s: empty table %q", id, tbl.Title)
			}
		}
	}
}
