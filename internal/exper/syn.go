package exper

import (
	"fmt"

	"gsim"
	"gsim/internal/metrics"
)

// figTimeSyn measures query time vs graph size on a synthetic family
// (Fig. 8 for Syn-1, Fig. 9 for Syn-2): the three baselines plus GBDA at
// τ̂ ∈ {10, 20, 30}.
//
// Scale note: the paper's competitors exhaust 128 GB beyond 20K vertices;
// here the exact-LSAP baseline is additionally time-capped (O(n³) per pair)
// via Options.LSAPSynCap and greedy/seriation via Options.BaselineSynCap.
// Capped cells print "OOM", mirroring how the paper reports the failure.
func (r *runner) figTimeSyn(id, profile string) ([]*Table, error) {
	env, err := r.synEnv(profile)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     id,
		Title:  fmt.Sprintf("Query time vs graph size on %s (cf. Fig. %s)", profile, id[3:]),
		Header: []string{"size", "LSAP", "greedysort", "seriation", "GBDA(t=10)", "GBDA(t=20)", "GBDA(t=30)"},
		Notes: []string{
			"seconds per query over an 8-graph database slice (times scale linearly in |D|)",
			"OOM marks sizes beyond a baseline's resource cap",
			"paper shape: baselines grow superlinearly and die at 20K; GBDA stays near-flat through 100K",
		},
	}
	for _, size := range sortedSizes(env.subsets) {
		e := env.subsets[size]
		tview, err := e.timingView()
		if err != nil {
			return nil, err
		}
		// Warm the per-size model and Jeffreys prior before timing: they
		// are offline artifacts (Table V), not per-query cost.
		if _, err := tview.Search(tview.Query(r.queries(e.ds)[0]),
			gsim.SearchOptions{Method: gsim.GBDA, Tau: 30, Gamma: 0.8}); err != nil {
			return nil, err
		}
		timingEnv := &realEnv{ds: e.ds, db: tview}
		row := []string{fmt.Sprint(size)}
		cells := []struct {
			opt gsim.SearchOptions
			cap int
		}{
			{gsim.SearchOptions{Method: gsim.LSAP, Tau: 10}, r.opt.LSAPSynCap},
			{gsim.SearchOptions{Method: gsim.GreedySort, Tau: 10}, r.opt.BaselineSynCap},
			{gsim.SearchOptions{Method: gsim.Seriation, Tau: 10}, r.opt.BaselineSynCap},
			{gsim.SearchOptions{Method: gsim.GBDA, Tau: 10, Gamma: 0.8}, 0},
			{gsim.SearchOptions{Method: gsim.GBDA, Tau: 20, Gamma: 0.8}, 0},
			{gsim.SearchOptions{Method: gsim.GBDA, Tau: 30, Gamma: 0.8}, 0},
		}
		for _, c := range cells {
			if c.cap > 0 && size > c.cap {
				row = append(row, "OOM")
				continue
			}
			avg, err := r.timeQueries(timingEnv, c.opt)
			if err != nil {
				return nil, err
			}
			row = append(row, fmtSeconds(avg))
		}
		t.Rows = append(t.Rows, row)
	}
	return []*Table{t}, nil
}

// figEffectSyn renders precision/recall/F1 vs graph size on Syn-1 for one
// τ̂ (Figs. 31–42): LSAP, greedysort, seriation, GBDA at γ ∈ {0.6,0.7,0.8}.
func (r *runner) figEffectSyn(id, measure string, tau int) ([]*Table, error) {
	env, err := r.synEnv("syn1")
	if err != nil {
		return nil, err
	}
	series := []struct {
		label string
		opt   gsim.SearchOptions
		cap   int
	}{
		{"LSAP", gsim.SearchOptions{Method: gsim.LSAP, Tau: tau}, r.opt.LSAPSynCap},
		{"greedysort", gsim.SearchOptions{Method: gsim.GreedySort, Tau: tau}, r.opt.BaselineSynCap},
		{"seriation", gsim.SearchOptions{Method: gsim.Seriation, Tau: tau}, r.opt.BaselineSynCap},
		{"GBDA(g=.60)", gsim.SearchOptions{Method: gsim.GBDA, Tau: tau, Gamma: 0.60}, 0},
		{"GBDA(g=.70)", gsim.SearchOptions{Method: gsim.GBDA, Tau: tau, Gamma: 0.70}, 0},
		{"GBDA(g=.80)", gsim.SearchOptions{Method: gsim.GBDA, Tau: tau, Gamma: 0.80}, 0},
	}
	t := &Table{
		ID:     id,
		Title:  fmt.Sprintf("%s vs graph size on Syn-1, tau=%d (cf. Fig. %s)", measure, tau, id[3:]),
		Header: []string{"size"},
		Notes:  []string{"micro-averaged over the query workload against generator ground truth"},
	}
	for _, s := range series {
		t.Header = append(t.Header, s.label)
	}
	for _, size := range sortedSizes(env.subsets) {
		e := env.subsets[size]
		row := []string{fmt.Sprint(size)}
		for si, s := range series {
			if s.cap > 0 && size > s.cap {
				row = append(row, "OOM")
				continue
			}
			var (
				agg metrics.Counts
				err error
			)
			if si < 3 {
				// Baseline estimates are t-independent: score once per
				// (size, method, query) and reuse across Figs. 31-42.
				agg, err = r.synBaselineCounts(e, size, s.opt, tau)
			} else {
				opt := s.opt
				opt.Workers = r.opt.Workers
				agg, err = r.effect(e, opt)
			}
			if err != nil {
				return nil, err
			}
			row = append(row, fmtFloat(pick(agg, measure)))
		}
		t.Rows = append(t.Rows, row)
	}
	return []*Table{t}, nil
}

// synBaselineCounts thresholds cached scored scans for one synthetic subset.
func (r *runner) synBaselineCounts(e *realEnv, size int, opt gsim.SearchOptions, tau int) (metrics.Counts, error) {
	var agg metrics.Counts
	for _, qi := range r.queries(e.ds) {
		key := fmt.Sprintf("%s|%d|%v|%d", e.ds.Name, size, opt.Method, qi)
		res, ok := r.scoreCache[key]
		if !ok {
			o := opt
			o.CollectAll = true
			o.Workers = r.opt.Workers
			var err error
			res, err = e.db.Search(e.db.Query(qi), o)
			if err != nil {
				return agg, err
			}
			r.scoreCache[key] = res
		}
		var sel []int
		for _, m := range res.Matches {
			if m.Score <= float64(tau)+1e-9 {
				sel = append(sel, m.Index)
			}
		}
		agg.Add(metrics.Evaluate(sel, e.ds.TruthSet(qi, tau)))
	}
	return agg, nil
}
