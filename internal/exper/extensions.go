package exper

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"gsim"
	"gsim/internal/index"
	"gsim/internal/method"
	"gsim/internal/metrics"
)

// Extension experiments: artifacts beyond the paper's figures that evaluate
// the repository's added capabilities. They are addressed like the paper
// artifacts but listed separately.

// ExtensionIDs lists the runnable extension experiments.
func ExtensionIDs() []string { return []string{"xprefilter", "xhybrid", "xbatch"} }

// xPrefilter measures the layered admissible filter: pruning power per
// layer and the end-to-end speedup it buys each method.
func (r *runner) xPrefilter() ([]*Table, error) {
	e, err := r.realEnv("grec")
	if err != nil {
		return nil, err
	}
	ix := index.Build(e.ds.Col.Entries())
	power := &Table{
		ID:     "xprefilter",
		Title:  "Layered pre-filter pruning power on grec (extension)",
		Header: []string{"tau", "total", "size-pruned", "label-pruned", "branch-pruned", "survivors"},
	}
	q := r.queries(e.ds)[0]
	qs := ix.Summary(q)
	qb := e.ds.Col.Entry(q).Branches
	for _, tau := range []int{1, 3, 5, 10} {
		st := ix.Pruning(qs, qb, tau)
		power.Rows = append(power.Rows, []string{
			fmt.Sprint(tau), fmt.Sprint(st.Total), fmt.Sprint(st.SizePruned),
			fmt.Sprint(st.LabelPruned), fmt.Sprint(st.BranchPruned), fmt.Sprint(st.Survivors),
		})
	}

	speed := &Table{
		ID:     "xprefilter",
		Title:  "Query time with and without the pre-filter on grec (extension)",
		Header: []string{"method", "plain", "prefiltered"},
	}
	for _, m := range []gsim.Method{gsim.LSAP, gsim.GreedySort, gsim.GBDA} {
		plain, err := r.timeQueries(e, gsim.SearchOptions{Method: m, Tau: 5, Gamma: 0.9})
		if err != nil {
			return nil, err
		}
		filt, err := r.timeQueries(e, gsim.SearchOptions{Method: m, Tau: 5, Gamma: 0.9, Prefilter: true})
		if err != nil {
			return nil, err
		}
		speed.Rows = append(speed.Rows, []string{m.String(), fmtSeconds(plain), fmtSeconds(filt)})
	}
	return []*Table{power, speed}, nil
}

// xBatch measures the two SearchBatch execution strategies on the same
// workload: wall-clock time for the whole batch and the number of entry
// decompositions each strategy pays (counted via the method test hook).
// Entry-major claims every database entry once per batch; query-major
// revisits it once per query.
func (r *runner) xBatch() ([]*Table, error) {
	e, err := r.realEnv("grec")
	if err != nil {
		return nil, err
	}
	queries := r.prepared(e, r.queries(e.ds))
	t := &Table{
		ID:     "xbatch",
		Title:  fmt.Sprintf("SearchBatch strategies on grec, %d queries (extension)", len(queries)),
		Header: []string{"method", "query-major", "entry-major", "speedup", "decomp-q", "decomp-e"},
		Notes: []string{
			"decomp-* = entry representations materialised during the batch (test hook)",
			"GBDA and seriation share each entry's representation across the workload; the matrix baselines rebuild per pair under either strategy",
		},
	}
	run := func(m gsim.Method, strat gsim.BatchStrategy) (time.Duration, int64, error) {
		opt := gsim.SearchOptions{Method: m, Tau: 5, Gamma: 0.9, Workers: r.opt.Workers, BatchStrategy: strat}
		// One untimed batch warms the per-size models and Jeffreys
		// priors: those are offline artifacts, not per-query cost.
		if _, err := e.db.SearchBatch(context.Background(), queries, opt); err != nil {
			return 0, 0, err
		}
		var decomps atomic.Int64
		method.SetDecompCounter(&decomps)
		defer method.SetDecompCounter(nil)
		t0 := time.Now()
		if _, err := e.db.SearchBatch(context.Background(), queries, opt); err != nil {
			return 0, 0, err
		}
		return time.Since(t0), decomps.Load(), nil
	}
	for _, m := range []gsim.Method{gsim.GBDA, gsim.GreedySort, gsim.Seriation} {
		qt, qd, err := run(m, gsim.BatchQueryMajor)
		if err != nil {
			return nil, err
		}
		et, ed, err := run(m, gsim.BatchEntryMajor)
		if err != nil {
			return nil, err
		}
		speed := "n/a"
		if et > 0 {
			speed = fmt.Sprintf("%.2fx", float64(qt)/float64(et))
		}
		t.Rows = append(t.Rows, []string{
			m.String(), fmtSeconds(qt), fmtSeconds(et), speed,
			fmt.Sprint(qd), fmt.Sprint(ed),
		})
	}
	return []*Table{t}, nil
}

// xHybrid compares the plain GBDA filter with the hybrid filter-verify
// search on a small-graph data set where A* verification is feasible.
func (r *runner) xHybrid() ([]*Table, error) {
	e, err := r.realEnv("grec")
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "xhybrid",
		Title:  "GBDA filter vs hybrid filter-verify on grec (extension)",
		Header: []string{"tau", "GBDA-P", "GBDA-R", "GBDA-F1", "hybrid-P", "hybrid-R", "hybrid-F1"},
		Notes:  []string{"hybrid verifies candidates up to 24 vertices with threshold-limited A*"},
	}
	for _, tau := range []int{2, 4, 6} {
		var gb, hy metrics.Counts
		for _, qi := range r.queries(e.ds) {
			truth := e.ds.TruthSet(qi, tau)
			rg, err := e.db.Search(e.db.Query(qi), gsim.SearchOptions{Method: gsim.GBDA, Tau: tau, Gamma: 0.8})
			if err != nil {
				return nil, err
			}
			gb.Add(metrics.Evaluate(rg.Indexes(), truth))
			rh, err := e.db.Search(e.db.Query(qi), gsim.SearchOptions{
				Method: gsim.Hybrid, Tau: tau, Gamma: 0.8, HybridVerifyMax: 24,
			})
			if err != nil {
				return nil, err
			}
			hy.Add(metrics.Evaluate(rh.Indexes(), truth))
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(tau),
			fmtFloat(gb.Precision()), fmtFloat(gb.Recall()), fmtFloat(gb.F1()),
			fmtFloat(hy.Precision()), fmtFloat(hy.Recall()), fmtFloat(hy.F1()),
		})
	}
	return []*Table{t}, nil
}
