package exper

import (
	"fmt"

	"gsim"
	"gsim/internal/index"
	"gsim/internal/metrics"
)

// Extension experiments: artifacts beyond the paper's figures that evaluate
// the repository's added capabilities (DESIGN.md §1, items 22–23). They are
// addressed like the paper artifacts but listed separately.

// ExtensionIDs lists the runnable extension experiments.
func ExtensionIDs() []string { return []string{"xprefilter", "xhybrid"} }

// xPrefilter measures the layered admissible filter: pruning power per
// layer and the end-to-end speedup it buys each method.
func (r *runner) xPrefilter() ([]*Table, error) {
	e, err := r.realEnv("grec")
	if err != nil {
		return nil, err
	}
	ix := index.Build(e.ds.Col)
	power := &Table{
		ID:     "xprefilter",
		Title:  "Layered pre-filter pruning power on grec (extension)",
		Header: []string{"tau", "total", "size-pruned", "label-pruned", "branch-pruned", "survivors"},
	}
	q := r.queries(e.ds)[0]
	qs := ix.Summary(q)
	qb := e.ds.Col.Entry(q).Branches
	for _, tau := range []int{1, 3, 5, 10} {
		st := ix.Pruning(qs, qb, tau)
		power.Rows = append(power.Rows, []string{
			fmt.Sprint(tau), fmt.Sprint(st.Total), fmt.Sprint(st.SizePruned),
			fmt.Sprint(st.LabelPruned), fmt.Sprint(st.BranchPruned), fmt.Sprint(st.Survivors),
		})
	}

	speed := &Table{
		ID:     "xprefilter",
		Title:  "Query time with and without the pre-filter on grec (extension)",
		Header: []string{"method", "plain", "prefiltered"},
	}
	for _, m := range []gsim.Method{gsim.LSAP, gsim.GreedySort, gsim.GBDA} {
		plain, err := r.timeQueries(e, gsim.SearchOptions{Method: m, Tau: 5, Gamma: 0.9})
		if err != nil {
			return nil, err
		}
		filt, err := r.timeQueries(e, gsim.SearchOptions{Method: m, Tau: 5, Gamma: 0.9, Prefilter: true})
		if err != nil {
			return nil, err
		}
		speed.Rows = append(speed.Rows, []string{m.String(), fmtSeconds(plain), fmtSeconds(filt)})
	}
	return []*Table{power, speed}, nil
}

// xHybrid compares the plain GBDA filter with the hybrid filter-verify
// search on a small-graph data set where A* verification is feasible.
func (r *runner) xHybrid() ([]*Table, error) {
	e, err := r.realEnv("grec")
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "xhybrid",
		Title:  "GBDA filter vs hybrid filter-verify on grec (extension)",
		Header: []string{"tau", "GBDA-P", "GBDA-R", "GBDA-F1", "hybrid-P", "hybrid-R", "hybrid-F1"},
		Notes:  []string{"hybrid verifies candidates up to 24 vertices with threshold-limited A*"},
	}
	for _, tau := range []int{2, 4, 6} {
		var gb, hy metrics.Counts
		for _, qi := range r.queries(e.ds) {
			truth := e.ds.TruthSet(qi, tau)
			rg, err := e.db.Search(e.db.Query(qi), gsim.SearchOptions{Method: gsim.GBDA, Tau: tau, Gamma: 0.8})
			if err != nil {
				return nil, err
			}
			gb.Add(metrics.Evaluate(rg.Indexes(), truth))
			rh, err := e.db.Search(e.db.Query(qi), gsim.SearchOptions{
				Method: gsim.Hybrid, Tau: tau, Gamma: 0.8, HybridVerifyMax: 24,
			})
			if err != nil {
				return nil, err
			}
			hy.Add(metrics.Evaluate(rh.Indexes(), truth))
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(tau),
			fmtFloat(gb.Precision()), fmtFloat(gb.Recall()), fmtFloat(gb.F1()),
			fmtFloat(hy.Precision()), fmtFloat(hy.Recall()), fmtFloat(hy.F1()),
		})
	}
	return []*Table{t}, nil
}
