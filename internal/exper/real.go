package exper

import (
	"context"
	"fmt"
	"sort"
	"time"

	"gsim"
	"gsim/internal/metrics"
)

// table3 regenerates the dataset statistics table (Table III).
func (r *runner) table3() ([]*Table, error) {
	t := &Table{
		ID:     "table3",
		Title:  "Statistics of data sets (cf. Table III)",
		Header: []string{"dataset", "|D|", "|Q|", "Vm", "Em", "d", "scale-free"},
		Notes: []string{
			fmt.Sprintf("real profiles generated at scale=%.2f of the paper's volumes; per-graph statistics match Table III", r.opt.Scale),
		},
	}
	for _, name := range r.realSets {
		e, err := r.realEnv(name)
		if err != nil {
			return nil, err
		}
		s := e.ds.Col.Stats()
		t.Rows = append(t.Rows, []string{
			name,
			fmt.Sprint(len(e.ds.DBGraphs)),
			fmt.Sprint(len(e.ds.Queries)),
			fmt.Sprint(s.MaxV),
			fmt.Sprint(s.MaxE),
			fmt.Sprintf("%.1f", s.AvgDegree),
			fmt.Sprint(e.ds.ScaleFree),
		})
	}
	for _, profile := range []string{"syn1", "syn2"} {
		env, err := r.synEnv(profile)
		if err != nil {
			return nil, err
		}
		for _, size := range sortedSizes(env.subsets) {
			e := env.subsets[size]
			s := e.ds.Col.Stats()
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%s-%dK", profile, size/1000),
				fmt.Sprint(len(e.ds.DBGraphs)),
				fmt.Sprint(len(e.ds.Queries)),
				fmt.Sprint(s.MaxV),
				fmt.Sprint(s.MaxE),
				fmt.Sprintf("%.1f", s.AvgDegree),
				fmt.Sprint(e.ds.ScaleFree),
			})
		}
	}
	return []*Table{t}, nil
}

// table4 measures the offline cost of the GBD prior (Table IV): sampling
// pairs, computing their GBDs and fitting the GMM.
func (r *runner) table4() ([]*Table, error) {
	t := &Table{
		ID:     "table4",
		Title:  "Costs of computing the GBD prior distribution (cf. Table IV)",
		Header: []string{"dataset", "pairs", "time", "space"},
		Notes: []string{
			"space = retained prior artifact (GMM parameters + discretised table)",
			"paper: N=100,000 pairs; 11.1s (AIDS) to 3.8h (Syn-1), growing with n·d",
		},
	}
	add := func(name string, e *realEnv) {
		// Artifact: K components × 3 params + a discretised row per
		// possible ϕ value (ϕ ≤ max |V|).
		space := 3*3*8 + (e.ds.Col.Stats().MaxV+1)*8
		t.Rows = append(t.Rows, []string{
			name, fmt.Sprint(e.samples), fmtSeconds(e.priorT), fmt.Sprintf("%dB", space),
		})
	}
	for _, name := range r.realSets {
		e, err := r.realEnv(name)
		if err != nil {
			return nil, err
		}
		add(name, e)
	}
	for _, profile := range []string{"syn1", "syn2"} {
		env, err := r.synEnv(profile)
		if err != nil {
			return nil, err
		}
		for _, size := range sortedSizes(env.subsets) {
			add(fmt.Sprintf("%s-%dK", profile, size/1000), env.subsets[size])
		}
	}
	return []*Table{t}, nil
}

// table5 measures the offline cost of the GED (Jeffreys) prior (Table V):
// one row per data set, covering every extended size that occurs.
func (r *runner) table5() ([]*Table, error) {
	t := &Table{
		ID:     "table5",
		Title:  "Costs of computing the GED prior distribution (cf. Table V)",
		Header: []string{"dataset", "sizes", "tau-max", "time", "space"},
		Notes: []string{
			"time grows with the number of distinct |V'1| values (O(n·τ̂^5) worst case, Section VI-C)",
			"paper: 70.32h (AIDS) … 6.31h (Syn); hours because every v in 1..n is tabulated — we tabulate occurring sizes only",
		},
	}
	row := func(name string, e *realEnv, tauMax int) error {
		sizes := distinctSizes(e)
		t0 := time.Now()
		for _, v := range sizes {
			if _, err := e.db.GEDPriorRow(v); err != nil {
				return err
			}
		}
		el := time.Since(t0)
		space := len(sizes) * (tauMax + 1) * 8
		t.Rows = append(t.Rows, []string{
			name, fmt.Sprint(len(sizes)), fmt.Sprint(tauMax), fmtSeconds(el), fmt.Sprintf("%dB", space),
		})
		return nil
	}
	for _, name := range r.realSets {
		e, err := r.realEnv(name)
		if err != nil {
			return nil, err
		}
		if err := row(name, e, 10); err != nil {
			return nil, err
		}
	}
	for _, profile := range []string{"syn1", "syn2"} {
		env, err := r.synEnv(profile)
		if err != nil {
			return nil, err
		}
		for _, size := range sortedSizes(env.subsets) {
			if err := row(fmt.Sprintf("%s-%dK", profile, size/1000), env.subsets[size], 30); err != nil {
				return nil, err
			}
		}
	}
	return []*Table{t}, nil
}

func distinctSizes(e *realEnv) []int {
	seen := map[int]bool{}
	for i := 0; i < e.ds.Col.Len(); i++ {
		seen[e.ds.Col.Graph(i).NumVertices()] = true
	}
	out := make([]int, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// fig5 reproduces the inferred GBD prior on the Fingerprint-like data set:
// the sampled histogram against the fitted GMM, per ϕ.
func (r *runner) fig5() ([]*Table, error) {
	e, err := r.realEnv("finger")
	if err != nil {
		return nil, err
	}
	samples := e.ds.Col.SamplePairGBDs(r.opt.SamplePairs, 7)
	maxPhi := 0
	hist := map[int]int{}
	for _, s := range samples {
		hist[int(s)]++
		if int(s) > maxPhi {
			maxPhi = int(s)
		}
	}
	t := &Table{
		ID:     "fig5",
		Title:  "Inferred prior distribution of GBDs on the Fingerprint-like data set (cf. Fig. 5)",
		Header: []string{"phi", "sampled", "inferred"},
		Notes:  []string{"sampled = empirical pair frequency; inferred = GMM mass on [ϕ−.5, ϕ+.5] (Eq. 14)"},
	}
	for phi := 0; phi <= maxPhi; phi++ {
		p, err := e.db.GBDPriorProb(float64(phi))
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(phi),
			fmtFloat(float64(hist[phi]) / float64(len(samples))),
			fmtFloat(p),
		})
	}
	return []*Table{t}, nil
}

// fig6 reproduces the Jeffreys prior heat map: Pr[GED=τ] per extended size.
func (r *runner) fig6() ([]*Table, error) {
	e, err := r.realEnv("finger")
	if err != nil {
		return nil, err
	}
	sizes := distinctSizes(e)
	if len(sizes) > 8 {
		step := len(sizes) / 8
		var pick []int
		for i := 0; i < len(sizes); i += step {
			pick = append(pick, sizes[i])
		}
		sizes = pick
	}
	t := &Table{
		ID:     "fig6",
		Title:  "Jeffreys prior of GEDs on the Fingerprint-like data set (cf. Fig. 6)",
		Header: append([]string{"tau\\v"}, intStrings(sizes)...),
		Notes:  []string{"each column is the prior Pr[GED=τ | |V'1|=v]; the paper renders this grid as grey scale"},
	}
	rows := make([][]string, 11)
	for tau := 0; tau <= 10; tau++ {
		rows[tau] = []string{fmt.Sprint(tau)}
	}
	for _, v := range sizes {
		row, err := e.db.GEDPriorRow(v)
		if err != nil {
			return nil, err
		}
		for tau := 0; tau <= 10 && tau < len(row); tau++ {
			rows[tau] = append(rows[tau], fmtFloat(row[tau]))
		}
	}
	t.Rows = rows
	return []*Table{t}, nil
}

func intStrings(xs []int) []string {
	out := make([]string, len(xs))
	for i, x := range xs {
		out[i] = fmt.Sprint(x)
	}
	return out
}

// fig7 measures average query response time per method on the real-profile
// data sets (Fig. 7): LSAP, greedysort, seriation, GBDA at τ̂ ∈ {1, 5, 10}.
func (r *runner) fig7() ([]*Table, error) {
	t := &Table{
		ID:     "fig7",
		Title:  "Average query time on real data sets (cf. Fig. 7)",
		Header: []string{"dataset", "LSAP", "greedysort", "seriation", "GBDA(t=1)", "GBDA(t=5)", "GBDA(t=10)"},
		Notes: []string{
			"seconds per query, averaged over the query workload",
			"paper shape: GBDA fastest on every real data set at every τ̂",
		},
	}
	for _, name := range r.realSets {
		e, err := r.realEnv(name)
		if err != nil {
			return nil, err
		}
		row := []string{name}
		for _, cfg := range []gsim.SearchOptions{
			{Method: gsim.LSAP, Tau: 5},
			{Method: gsim.GreedySort, Tau: 5},
			{Method: gsim.Seriation, Tau: 5},
			{Method: gsim.GBDA, Tau: 1, Gamma: 0.9},
			{Method: gsim.GBDA, Tau: 5, Gamma: 0.9},
			{Method: gsim.GBDA, Tau: 10, Gamma: 0.9},
		} {
			avg, err := r.timeQueries(e, cfg)
			if err != nil {
				return nil, err
			}
			row = append(row, fmtSeconds(avg))
		}
		t.Rows = append(t.Rows, row)
	}
	return []*Table{t}, nil
}

// timeQueries runs the configured search for each query and returns the
// mean wall-clock latency.
func (r *runner) timeQueries(e *realEnv, opt gsim.SearchOptions) (time.Duration, error) {
	opt.Workers = r.opt.Workers
	qs := r.queries(e.ds)
	var total time.Duration
	for _, qi := range qs {
		res, err := e.db.Search(e.db.Query(qi), opt)
		if err != nil {
			return 0, err
		}
		total += res.Elapsed
	}
	return total / time.Duration(len(qs)), nil
}

// figEffectReal renders precision/recall/F1 vs τ̂ for one real data set
// (Figs. 10–21): the three baselines plus GBDA at γ ∈ {0.7, 0.8, 0.9}.
// Baselines are scored once per query (their estimates are τ̂-independent)
// and thresholded across the whole τ̂ sweep.
func (r *runner) figEffectReal(id, measure, name string) ([]*Table, error) {
	e, err := r.realEnv(name)
	if err != nil {
		return nil, err
	}
	taus := make([]int, 10)
	for i := range taus {
		taus[i] = i + 1
	}
	series := []struct {
		label    string
		opt      gsim.SearchOptions
		baseline bool
	}{
		{"LSAP", gsim.SearchOptions{Method: gsim.LSAP}, true},
		{"greedysort", gsim.SearchOptions{Method: gsim.GreedySort}, true},
		{"seriation", gsim.SearchOptions{Method: gsim.Seriation}, true},
		{"GBDA(g=.70)", gsim.SearchOptions{Method: gsim.GBDA, Gamma: 0.70}, false},
		{"GBDA(g=.80)", gsim.SearchOptions{Method: gsim.GBDA, Gamma: 0.80}, false},
		{"GBDA(g=.90)", gsim.SearchOptions{Method: gsim.GBDA, Gamma: 0.90}, false},
	}
	t := &Table{
		ID:     id,
		Title:  fmt.Sprintf("%s vs tau on %s (cf. Fig. %s)", measure, name, id[3:]),
		Header: []string{"tau"},
		Notes:  []string{"micro-averaged over the query workload against exact ground truth"},
	}
	grid := make([]map[int]metrics.Counts, len(series))
	for i, s := range series {
		t.Header = append(t.Header, s.label)
		if s.baseline {
			grid[i], err = r.baselineCounts(e, s.opt, taus)
		} else {
			grid[i], err = r.gbdaCounts(e, s.opt, taus)
		}
		if err != nil {
			return nil, err
		}
	}
	for _, tau := range taus {
		row := []string{fmt.Sprint(tau)}
		for i := range series {
			row = append(row, fmtFloat(pick(grid[i][tau], measure)))
		}
		t.Rows = append(t.Rows, row)
	}
	return []*Table{t}, nil
}

// baselineCounts evaluates a τ̂-independent estimator across all thresholds
// with one scored scan per query, batched so the scorer is prepared once
// for the whole workload.
func (r *runner) baselineCounts(e *realEnv, opt gsim.SearchOptions, taus []int) (map[int]metrics.Counts, error) {
	out := make(map[int]metrics.Counts, len(taus))
	opt.CollectAll = true
	opt.Workers = r.opt.Workers
	// The harness-wide Batch strategy is deliberately NOT applied here:
	// forcing entry-major onto a CollectAll sweep would materialise every
	// query's full scored scan at once, losing the one-scan-at-a-time
	// bound below. BatchAuto keeps CollectAll on the streaming path.
	opt.Tau = taus[len(taus)-1]
	qis := r.queries(e.ds)
	// SearchBatchFunc keeps one scored scan live at a time — CollectAll
	// holds a match per database graph, so materialising the whole batch
	// would cost O(queries × |D|).
	err := e.db.SearchBatchFunc(context.Background(), r.prepared(e, qis), opt, func(n int, res *gsim.Result) error {
		qi := qis[n]
		for _, tau := range taus {
			var sel []int
			for _, m := range res.Matches {
				if m.Score <= float64(tau)+1e-9 {
					sel = append(sel, m.Index)
				}
			}
			c := out[tau]
			c.Add(metrics.Evaluate(sel, e.ds.TruthSet(qi, tau)))
			out[tau] = c
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// prepared materialises the query workload for SearchBatch.
func (r *runner) prepared(e *realEnv, qis []int) []*gsim.Query {
	qs := make([]*gsim.Query, len(qis))
	for i, qi := range qis {
		qs[i] = e.db.Query(qi)
	}
	return qs
}

// gbdaCounts evaluates a GBDA-family configuration per threshold: the
// posterior depends on τ̂ itself, but each scan is only O(n·d + τ̂³).
func (r *runner) gbdaCounts(e *realEnv, opt gsim.SearchOptions, taus []int) (map[int]metrics.Counts, error) {
	out := make(map[int]metrics.Counts, len(taus))
	for _, tau := range taus {
		o := opt
		o.Tau = tau
		o.Workers = r.opt.Workers
		agg, err := r.effect(e, o)
		if err != nil {
			return nil, err
		}
		out[tau] = agg
	}
	return out, nil
}

// effect runs the search for every query in one batch and micro-averages
// the confusion against the dataset's certified ground truth.
func (r *runner) effect(e *realEnv, opt gsim.SearchOptions) (metrics.Counts, error) {
	var agg metrics.Counts
	opt.BatchStrategy = r.opt.Batch
	qis := r.queries(e.ds)
	err := e.db.SearchBatchFunc(context.Background(), r.prepared(e, qis), opt, func(n int, res *gsim.Result) error {
		agg.Add(metrics.Evaluate(res.Indexes(), e.ds.TruthSet(qis[n], opt.Tau)))
		return nil
	})
	return agg, err
}

func pick(c metrics.Counts, measure string) float64 {
	switch measure {
	case "precision":
		return c.Precision()
	case "recall":
		return c.Recall()
	default:
		return c.F1()
	}
}

// figVariant compares GBDA against its V1 (α ∈ {10,50,100}) or V2
// (w ∈ {0.1, 0.5}) alternatives by F1 at γ = 0.9 (Figs. 22–29).
func (r *runner) figVariant(id, variant, name string) ([]*Table, error) {
	e, err := r.realEnv(name)
	if err != nil {
		return nil, err
	}
	var series []struct {
		label string
		opt   gsim.SearchOptions
	}
	series = append(series, struct {
		label string
		opt   gsim.SearchOptions
	}{"GBDA", gsim.SearchOptions{Method: gsim.GBDA, Gamma: 0.9}})
	if variant == "v1" {
		for _, alpha := range []int{10, 50, 100} {
			series = append(series, struct {
				label string
				opt   gsim.SearchOptions
			}{fmt.Sprintf("V1(a=%d)", alpha), gsim.SearchOptions{Method: gsim.GBDAV1, Gamma: 0.9, V1Sample: alpha}})
		}
	} else {
		for _, w := range []float64{0.1, 0.5} {
			series = append(series, struct {
				label string
				opt   gsim.SearchOptions
			}{fmt.Sprintf("V2(w=%.1f)", w), gsim.SearchOptions{Method: gsim.GBDAV2, Gamma: 0.9, V2Weight: w}})
		}
	}
	t := &Table{
		ID:     id,
		Title:  fmt.Sprintf("F1 vs tau on %s, GBDA vs GBDA-%s (cf. Fig. %s)", name, variant, id[3:]),
		Header: []string{"tau"},
	}
	for _, s := range series {
		t.Header = append(t.Header, s.label)
	}
	for tau := 1; tau <= 10; tau++ {
		row := []string{fmt.Sprint(tau)}
		for _, s := range series {
			opt := s.opt
			opt.Tau = tau
			opt.Workers = r.opt.Workers
			agg, err := r.effect(e, opt)
			if err != nil {
				return nil, err
			}
			row = append(row, fmtFloat(agg.F1()))
		}
		t.Rows = append(t.Rows, row)
	}
	return []*Table{t}, nil
}
