// Package exper regenerates every table and figure of the paper's
// evaluation (Section VII). Each experiment is addressed by the paper's
// artifact id ("table3" … "table5", "fig5" … "fig42") and renders a text
// table with the same rows/series the paper plots; EXPERIMENTS.md records
// the paper-vs-measured comparison.
//
// Scale: the default options shrink dataset volumes (not per-graph
// statistics) so the whole suite runs on a laptop in minutes. Options.Scale
// and Options.SynSizes restore the paper's full dimensions for users with
// the paper's 128 GB class of hardware.
package exper

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"gsim"
	"gsim/internal/dataset"
)

// Options dimension an experiment run.
type Options struct {
	// Scale shrinks the real-profile dataset volumes (default 0.04).
	Scale float64
	// SynSizes lists the synthetic subset sizes (default 1000, 2000, 5000).
	SynSizes []int
	// SynGraphs is the graph count per synthetic subset (default 12;
	// paper: 500).
	SynGraphs int
	// MaxQueries caps the query workload per dataset (default 4).
	MaxQueries int
	// SamplePairs for the GBD prior (default 20000; paper: 100000).
	SamplePairs int
	// LSAPSynCap is the largest synthetic size the exact-LSAP baseline
	// attempts; beyond it the harness reports the paper's OOM outcome
	// (default 1000 — O(n³) per pair).
	LSAPSynCap int
	// BaselineSynCap bounds greedy/seriation similarly (default 5000).
	BaselineSynCap int
	// MaxDBGraphs caps the searched database per dataset so the O(n³)
	// baselines stay tractable at default scale (default 300; 0 keeps
	// everything). Ground truth is evaluated over the same cap.
	MaxDBGraphs int
	// Workers for parallel scans (≤ 0: GOMAXPROCS).
	Workers int
	// Batch selects the SearchBatch execution strategy for the query
	// workloads the harness runs (default gsim.BatchAuto: entry-major
	// whenever the scorer shares per-entry work).
	Batch gsim.BatchStrategy
}

func (o Options) withDefaults() Options {
	if o.Scale <= 0 {
		o.Scale = 0.04
	}
	if len(o.SynSizes) == 0 {
		o.SynSizes = []int{1000, 2000, 5000}
	}
	if o.SynGraphs <= 0 {
		o.SynGraphs = 24
	}
	if o.MaxQueries <= 0 {
		o.MaxQueries = 4
	}
	if o.SamplePairs <= 0 {
		o.SamplePairs = 20000
	}
	if o.LSAPSynCap <= 0 {
		o.LSAPSynCap = 1000
	}
	if o.BaselineSynCap <= 0 {
		o.BaselineSynCap = 5000
	}
	if o.MaxDBGraphs == 0 {
		o.MaxDBGraphs = 300
	}
	return o
}

// Table is one rendered experiment artifact.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = pad(c, widths[i])
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Header)
	line(dashes(widths))
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

func pad(s string, w int) string {
	for len(s) < w {
		s += " "
	}
	return s
}

func dashes(widths []int) []string {
	out := make([]string, len(widths))
	for i, w := range widths {
		out[i] = strings.Repeat("-", w)
	}
	return out
}

// IDs lists every runnable experiment id in paper order.
func IDs() []string {
	ids := []string{"table3", "table4", "table5", "fig5", "fig6", "fig7", "fig8", "fig9"}
	for f := 10; f <= 29; f++ {
		ids = append(ids, fmt.Sprintf("fig%d", f))
	}
	for f := 31; f <= 42; f++ {
		ids = append(ids, fmt.Sprintf("fig%d", f))
	}
	return ids
}

// Run executes one experiment by id and writes its table(s) to w.
func Run(id string, opt Options, w io.Writer) error {
	opt = opt.withDefaults()
	r := newRunner(opt)
	tables, err := r.run(strings.ToLower(id))
	if err != nil {
		return err
	}
	for _, t := range tables {
		t.Fprint(w)
	}
	return nil
}

// RunAll executes every experiment in paper order.
func RunAll(opt Options, w io.Writer) error {
	opt = opt.withDefaults()
	r := newRunner(opt)
	for _, id := range IDs() {
		tables, err := r.run(id)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		for _, t := range tables {
			t.Fprint(w)
		}
	}
	return nil
}

// runner caches generated datasets and fitted priors across experiments so
// RunAll does not regenerate AASD twelve times.
type runner struct {
	opt        Options
	real       map[string]*realEnv
	syn        map[string]*synEnv
	realSets   []string
	scoreCache map[string]*gsim.Result
}

func newRunner(opt Options) *runner {
	return &runner{
		opt:        opt,
		real:       make(map[string]*realEnv),
		syn:        make(map[string]*synEnv),
		realSets:   []string{"aids", "finger", "grec", "aasd"},
		scoreCache: make(map[string]*gsim.Result),
	}
}

func (r *runner) run(id string) ([]*Table, error) {
	switch {
	case id == "xprefilter":
		return r.xPrefilter()
	case id == "xhybrid":
		return r.xHybrid()
	case id == "xbatch":
		return r.xBatch()
	case id == "table3":
		return r.table3()
	case id == "table4":
		return r.table4()
	case id == "table5":
		return r.table5()
	case id == "fig5":
		return r.fig5()
	case id == "fig6":
		return r.fig6()
	case id == "fig7":
		return r.fig7()
	case id == "fig8":
		return r.figTimeSyn("fig8", "syn1")
	case id == "fig9":
		return r.figTimeSyn("fig9", "syn2")
	case isBetween(id, 10, 13):
		return r.figEffectReal(id, "precision", figDataset(id, 10))
	case isBetween(id, 14, 17):
		return r.figEffectReal(id, "recall", figDataset(id, 14))
	case isBetween(id, 18, 21):
		return r.figEffectReal(id, "f1", figDataset(id, 18))
	case isBetween(id, 22, 25):
		return r.figVariant(id, "v1", figDataset(id, 22))
	case isBetween(id, 26, 29):
		return r.figVariant(id, "v2", figDataset(id, 26))
	case isBetween(id, 31, 34):
		return r.figEffectSyn(id, "precision", synTau(id, 31))
	case isBetween(id, 35, 38):
		return r.figEffectSyn(id, "recall", synTau(id, 35))
	case isBetween(id, 39, 42):
		return r.figEffectSyn(id, "f1", synTau(id, 39))
	default:
		return nil, fmt.Errorf("unknown experiment %q (known: %s)", id, strings.Join(IDs(), " "))
	}
}

func isBetween(id string, lo, hi int) bool {
	var n int
	if _, err := fmt.Sscanf(id, "fig%d", &n); err != nil {
		return false
	}
	return n >= lo && n <= hi
}

func figDataset(id string, base int) string {
	var n int
	fmt.Sscanf(id, "fig%d", &n)
	return []string{"aids", "finger", "grec", "aasd"}[n-base]
}

func synTau(id string, base int) int {
	var n int
	fmt.Sscanf(id, "fig%d", &n)
	return []int{15, 20, 25, 30}[n-base]
}

// realEnv bundles a generated real-profile dataset with its database and
// fitted priors.
type realEnv struct {
	ds      *dataset.Dataset
	db      *gsim.Database
	built   time.Duration // dataset generation time
	priorT  time.Duration // GBD prior fit time
	samples int
	// timingDB is a fixed-size slice of the database used by the latency
	// figures, so the O(n³) baselines stay measurable at every graph
	// size; per-query time scales linearly in |D|.
	timingDB *gsim.Database
}

// timingView lazily builds the 8-graph timing slice.
func (e *realEnv) timingView() (*gsim.Database, error) {
	if e.timingDB != nil {
		return e.timingDB, nil
	}
	slice := e.ds.DBGraphs
	if len(slice) > 8 {
		slice = slice[:8]
	}
	tdb := gsim.FromCollection(e.ds.Col, slice)
	if err := tdb.BuildPriors(gsim.OfflineConfig{TauMax: 30, SamplePairs: 2000, Seed: 5}); err != nil {
		return nil, err
	}
	e.timingDB = tdb
	return tdb, nil
}

func (r *runner) realEnv(name string) (*realEnv, error) {
	if e, ok := r.real[name]; ok {
		return e, nil
	}
	cfg, err := dataset.Profile(name, r.opt.Scale)
	if err != nil {
		return nil, err
	}
	t0 := time.Now()
	ds, err := dataset.Generate(cfg)
	if err != nil {
		return nil, err
	}
	built := time.Since(t0)
	r.capDB(ds)
	d := gsim.FromCollection(ds.Col, ds.DBGraphs)
	t1 := time.Now()
	if err := d.BuildPriors(gsim.OfflineConfig{
		TauMax:      10,
		SamplePairs: r.opt.SamplePairs,
		Seed:        7,
	}); err != nil {
		return nil, err
	}
	e := &realEnv{ds: ds, db: d, built: built, priorT: time.Since(t1), samples: r.opt.SamplePairs}
	r.real[name] = e
	return e, nil
}

// capDB shrinks the searched database (and hence the evaluated truth
// universe) to MaxDBGraphs so the cubic baselines stay tractable at the
// default scale.
func (r *runner) capDB(ds *dataset.Dataset) {
	if r.opt.MaxDBGraphs > 0 && len(ds.DBGraphs) > r.opt.MaxDBGraphs {
		ds.DBGraphs = ds.DBGraphs[:r.opt.MaxDBGraphs]
	}
}

// queries returns the capped query workload of a dataset.
func (r *runner) queries(ds *dataset.Dataset) []int {
	qs := ds.Queries
	if len(qs) > r.opt.MaxQueries {
		qs = qs[:r.opt.MaxQueries]
	}
	return qs
}

// synEnv bundles the per-size subsets of one synthetic family.
type synEnv struct {
	profile string
	sizes   []int
	subsets map[int]*realEnv
}

func (r *runner) synEnv(profile string) (*synEnv, error) {
	if e, ok := r.syn[profile]; ok {
		return e, nil
	}
	e := &synEnv{profile: profile, sizes: r.opt.SynSizes, subsets: make(map[int]*realEnv)}
	for i, size := range e.sizes {
		cfg, err := dataset.SynSubset(profile, size, r.opt.SynGraphs, int64(200+i))
		if err != nil {
			return nil, err
		}
		// At scaled-down graph counts keep the paper's multi-cluster
		// structure (500 graphs / 50 per cluster = 10 clusters): a
		// single-cluster subset would degenerate the GBD prior and
		// concentrate Λ2, deflating the posterior scale.
		if cfg.ClusterSize > cfg.NumGraphs/6 {
			cfg.ClusterSize = cfg.NumGraphs / 6
			if cfg.ClusterSize < 2 {
				cfg.ClusterSize = 2
			}
		}
		t0 := time.Now()
		ds, err := dataset.Generate(cfg)
		if err != nil {
			return nil, err
		}
		built := time.Since(t0)
		r.capDB(ds)
		d := gsim.FromCollection(ds.Col, ds.DBGraphs)
		t1 := time.Now()
		if err := d.BuildPriors(gsim.OfflineConfig{
			TauMax:      30,
			SamplePairs: r.opt.SamplePairs / 4,
			Seed:        int64(11 + i),
		}); err != nil {
			return nil, err
		}
		e.subsets[size] = &realEnv{ds: ds, db: d, built: built, priorT: time.Since(t1), samples: r.opt.SamplePairs / 4}
	}
	r.syn[profile] = e
	return e, nil
}

func fmtSeconds(d time.Duration) string {
	return fmt.Sprintf("%.4gs", d.Seconds())
}

func fmtFloat(v float64) string { return fmt.Sprintf("%.3f", v) }

func sortedSizes(m map[int]*realEnv) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}
