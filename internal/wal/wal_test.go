package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"gsim/internal/graph"
)

func testGraph(dict *graph.Labels, name string, n int) *graph.Graph {
	g := graph.New(n)
	g.Name = name
	for i := 0; i < n; i++ {
		g.AddVertex(dict.Intern(fmt.Sprintf("v%d", i%3)))
	}
	for i := 1; i < n; i++ {
		g.MustAddEdge(i-1, i, dict.Intern("e"))
	}
	return g
}

func graphsEqual(t *testing.T, want, got *graph.Graph, wdict, gdict *graph.Labels) {
	t.Helper()
	if want.Name != got.Name {
		t.Fatalf("name %q != %q", got.Name, want.Name)
	}
	if want.NumVertices() != got.NumVertices() || want.NumEdges() != got.NumEdges() {
		t.Fatalf("shape (%d,%d) != (%d,%d)",
			got.NumVertices(), got.NumEdges(), want.NumVertices(), want.NumEdges())
	}
	for v := 0; v < want.NumVertices(); v++ {
		if wdict.Name(want.VertexLabel(v)) != gdict.Name(got.VertexLabel(v)) {
			t.Fatalf("vertex %d label %q != %q",
				v, gdict.Name(got.VertexLabel(v)), wdict.Name(want.VertexLabel(v)))
		}
	}
	we, ge := want.Edges(), got.Edges()
	for i := range we {
		if we[i].U != ge[i].U || we[i].V != ge[i].V ||
			wdict.Name(we[i].Label) != gdict.Name(ge[i].Label) {
			t.Fatalf("edge %d mismatch: %+v vs %+v", i, ge[i], we[i])
		}
	}
}

func TestRecordRoundTrip(t *testing.T) {
	dict := graph.NewLabels()
	g := testGraph(dict, "rt", 7)
	payload := AppendRecord(nil, OpStore, 42, g, dict)

	fresh := graph.NewLabels() // decode into a fresh dictionary: labels travel by string
	rec, err := DecodeRecord(payload, fresh)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Op != OpStore || rec.ID != 42 {
		t.Fatalf("got op=%v id=%d", rec.Op, rec.ID)
	}
	graphsEqual(t, g, rec.G, dict, fresh)

	del := AppendRecord(nil, OpDelete, 9, nil, nil)
	rec, err = DecodeRecord(del, fresh)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Op != OpDelete || rec.ID != 9 || rec.G != nil {
		t.Fatalf("bad delete record: %+v", rec)
	}
}

func TestRecordDecodeRejectsGarbage(t *testing.T) {
	dict := graph.NewLabels()
	good := AppendRecord(nil, OpUpdate, 3, testGraph(dict, "g", 4), dict)
	cases := [][]byte{
		{},                                   // empty
		{99},                                 // unknown kind
		good[:len(good)-1],                   // truncated
		append(append([]byte{}, good...), 0), // trailing byte
	}
	for i, payload := range cases {
		if _, err := DecodeRecord(payload, graph.NewLabels()); err == nil {
			t.Errorf("case %d: corrupt payload decoded without error", i)
		}
	}
}

// writeRecords appends n store records and returns their payload bytes.
func writeRecords(t *testing.T, path string, n int, policy Policy) [][]byte {
	t.Helper()
	dict := graph.NewLabels()
	w, err := Open(path, Options{Policy: policy})
	if err != nil {
		t.Fatal(err)
	}
	payloads := make([][]byte, n)
	for i := 0; i < n; i++ {
		p := AppendRecord(nil, OpStore, uint64(i), testGraph(dict, fmt.Sprintf("g%d", i), 3+i%4), dict)
		payloads[i] = p
		seq, err := w.Append(p)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Commit(seq); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return payloads
}

func replayAll(t *testing.T, path string) [][]byte {
	t.Helper()
	var got [][]byte
	n, err := Replay(path, func(p []byte) error {
		got = append(got, append([]byte(nil), p...))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if int(n) != len(got) {
		t.Fatalf("Replay reported %d records, delivered %d", n, len(got))
	}
	return got
}

func TestWriterReplayRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "w.log")
	want := writeRecords(t, path, 25, FsyncAlways)
	got := replayAll(t, path)
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if string(got[i]) != string(want[i]) {
			t.Fatalf("record %d payload mismatch", i)
		}
	}
}

func TestTornTailTruncatedOnOpen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "w.log")
	writeRecords(t, path, 10, FsyncAlways)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Tear the last record: chop off its final 3 bytes.
	if err := os.WriteFile(path, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	if got := replayAll(t, path); len(got) != 9 {
		t.Fatalf("replayed %d records after tear, want 9", len(got))
	}

	// Open truncates the tear and appends cleanly after it.
	w, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st := w.Stats(); st.Records != 9 {
		t.Fatalf("reopened writer sees %d records, want 9", st.Records)
	}
	seq, err := w.Append([]byte("fresh"))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Commit(seq); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got := replayAll(t, path)
	if len(got) != 10 || string(got[9]) != "fresh" {
		t.Fatalf("after reopen+append: %d records (last %q)", len(got), got[len(got)-1])
	}
}

func TestBitFlipStopsReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "w.log")
	writeRecords(t, path, 10, FsyncNever)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0x40 // flip a bit inside the last record's payload
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if got := replayAll(t, path); len(got) != 9 {
		t.Fatalf("replayed %d records after bit flip, want 9", len(got))
	}
}

func TestCorruptLengthStopsReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "w.log")
	writeRecords(t, path, 3, FsyncNever)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[0] = 0xff // first record's length field becomes enormous
	data[3] = 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if got := replayAll(t, path); len(got) != 0 {
		t.Fatalf("replayed %d records with corrupt length, want 0", len(got))
	}
}

func TestReplayMissingFile(t *testing.T) {
	n, err := Replay(filepath.Join(t.TempDir(), "absent.log"), func([]byte) error { return nil })
	if err != nil || n != 0 {
		t.Fatalf("missing file: n=%d err=%v", n, err)
	}
}

func TestGroupCommitConcurrent(t *testing.T) {
	path := filepath.Join(t.TempDir(), "w.log")
	w, err := Open(path, Options{Policy: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	const writers, per = 8, 50
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < per; j++ {
				seq, err := w.Append([]byte(fmt.Sprintf("w%d-%d", i, j)))
				if err == nil {
					err = w.Commit(seq)
				}
				if err != nil {
					errs <- err
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if st := w.Stats(); st.Records != writers*per || st.Unsynced != 0 {
		t.Fatalf("stats %+v, want %d records all synced", st, writers*per)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if got := replayAll(t, path); len(got) != writers*per {
		t.Fatalf("replayed %d records, want %d", len(got), writers*per)
	}
}

func TestPolicies(t *testing.T) {
	for _, p := range []Policy{FsyncAlways, FsyncInterval, FsyncNever} {
		t.Run(p.String(), func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "w.log")
			want := writeRecords(t, path, 12, p)
			if got := replayAll(t, path); len(got) != len(want) {
				t.Fatalf("replayed %d records, want %d", len(got), len(want))
			}
		})
	}
	if _, err := ParsePolicy("bogus"); err == nil {
		t.Fatal("ParsePolicy accepted bogus policy")
	}
	for _, s := range []string{"always", "interval", "never"} {
		p, err := ParsePolicy(s)
		if err != nil || p.String() != s {
			t.Fatalf("ParsePolicy(%q) = %v, %v", s, p, err)
		}
	}
}

func TestClosedWriterRejectsAppends(t *testing.T) {
	path := filepath.Join(t.TempDir(), "w.log")
	w, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	if _, err := w.Append([]byte("x")); err == nil {
		t.Fatal("append after close succeeded")
	}
}

func TestStatsTracksUnsynced(t *testing.T) {
	path := filepath.Join(t.TempDir(), "w.log")
	w, err := Open(path, Options{Policy: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	for i := 0; i < 5; i++ {
		if _, err := w.Append([]byte("abc")); err != nil {
			t.Fatal(err)
		}
	}
	if st := w.Stats(); st.Unsynced != 5 || st.Bytes == 0 {
		t.Fatalf("before sync: %+v", st)
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	if st := w.Stats(); st.Unsynced != 0 {
		t.Fatalf("after sync: %+v", st)
	}
}
