package wal

import (
	"fmt"
	"path/filepath"
	"testing"

	"gsim/internal/graph"
)

// BenchmarkWALAppend measures the CPU cost of journaling one Store
// mutation — encode, frame, CRC, buffer — under the group-commit writer
// with fsync left to the OS (FsyncNever), so the number gates the code
// path rather than the disk. Gated by benchgate.
func BenchmarkWALAppend(b *testing.B) {
	dict := graph.NewLabels()
	g := graph.New(6)
	g.Name = "bench"
	for i := 0; i < 6; i++ {
		g.AddVertex(dict.Intern(fmt.Sprintf("v%d", i%3)))
	}
	for i := 1; i < 6; i++ {
		g.MustAddEdge(i-1, i, dict.Intern("e"))
	}
	w, err := Open(filepath.Join(b.TempDir(), "bench.log"), Options{Policy: FsyncNever})
	if err != nil {
		b.Fatal(err)
	}
	defer w.Close()
	buf := make([]byte, 0, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = AppendRecord(buf[:0], OpStore, uint64(i), g, dict)
		seq, err := w.Append(buf)
		if err != nil {
			b.Fatal(err)
		}
		if err := w.Commit(seq); err != nil {
			b.Fatal(err)
		}
	}
}
