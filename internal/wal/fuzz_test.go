package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// FuzzScan throws arbitrary bytes at the frame scanner. Whatever the
// input — torn tails, bit flips, length fields that lie — the scanner
// must not panic, must report exactly as many records as it delivers,
// must place the valid-prefix boundary inside the file, and must be
// stable: re-scanning the valid prefix yields the same records.
func FuzzScan(f *testing.F) {
	// Seed with a genuine log plus the corruption shapes the unit tests
	// cover, so the fuzzer starts from real frame structure.
	path := filepath.Join(f.TempDir(), "seed.log")
	w, err := Open(path, Options{Policy: FsyncNever})
	if err != nil {
		f.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		seq, err := w.Append([]byte(fmt.Sprintf("record-%03d", i)))
		if err != nil {
			f.Fatal(err)
		}
		if err := w.Commit(seq); err != nil {
			f.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		f.Fatal(err)
	}
	good, err := os.ReadFile(path)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add(good[:len(good)-3]) // torn tail
	flip := append([]byte(nil), good...)
	flip[len(flip)-1] ^= 0x40 // bit rot in the last payload
	f.Add(flip)
	lie := append([]byte(nil), good...)
	lie[0], lie[3] = 0xff, 0xff // length field claims ~4GB
	f.Add(lie)
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "fz.log")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		fh, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		defer fh.Close()

		delivered := 0
		records, valid, err := scan(fh, func([]byte) error {
			delivered++
			return nil
		})
		if err != nil {
			t.Fatalf("scan errored on corrupt input (should stop cleanly): %v", err)
		}
		if records != uint64(delivered) {
			t.Fatalf("scan reported %d records, delivered %d", records, delivered)
		}
		if valid < 0 || valid > int64(len(data)) {
			t.Fatalf("valid prefix %d outside file of %d bytes", valid, len(data))
		}

		// Stability: the valid prefix alone must replay the same records.
		if err := os.WriteFile(path, data[:valid], 0o644); err != nil {
			t.Fatal(err)
		}
		again, err := Replay(path, func([]byte) error { return nil })
		if err != nil {
			t.Fatalf("replaying valid prefix: %v", err)
		}
		if again != records {
			t.Fatalf("valid prefix replayed %d records, original scan saw %d", again, records)
		}
	})
}
