// Package wal is the append-only write-ahead log behind the durable
// database (gsim.Open): one log file per storage shard, holding every
// acknowledged mutation since the last snapshot segment landed, so a
// crashed node recovers by loading segments and replaying logs instead of
// losing everything since the last manual save.
//
// # Framing
//
// A log is a sequence of self-delimiting frames:
//
//	[4B little-endian payload length][4B CRC-32C of payload][payload]
//
// The CRC covers the payload only; the length field is validated by a
// sanity ceiling (maxRecordBytes) so a corrupt length cannot make the
// reader chase gigabytes of garbage. Record payloads (record.go) are
// self-contained — label strings travel inline — so a log replays into
// any dictionary, whatever shard count or label numbering the writing
// process used.
//
// # Torn-tail tolerance
//
// A crash mid-write leaves a torn tail: a truncated frame, a frame whose
// CRC does not match, or raw garbage. Scan finds the longest valid frame
// prefix; Open truncates the file to it before appending, and Replay
// simply stops there. Everything before the tear — every record whose
// Commit returned, under the always policy — survives; the tear itself
// was by construction never acknowledged, so dropping it is correct, not
// lossy. Corruption in the *middle* of a log (a flipped bit under a valid
// tail) also stops the scan at the corrupt frame: bytes past an
// untrusted frame boundary cannot be re-synchronised reliably, and a
// fsync-ordered writer never produces that state — it indicates media
// damage, which recovery surfaces by replaying short rather than
// guessing.
//
// # Group commit
//
// Append only frames the record into an in-memory pending buffer under
// the writer lock; Commit makes it durable according to the fsync
// policy. Under FsyncAlways, the first committer becomes the leader: it
// swaps out the whole pending buffer, writes and fsyncs it outside the
// lock, then wakes every waiter whose record the batch covered — N
// concurrent committers share one fsync instead of paying one each,
// which is what keeps per-record durability from serialising the sharded
// ingest path. FsyncInterval moves the fsync to a background ticker
// (bounded staleness, no per-commit wait), FsyncNever leaves it to the
// OS (fastest, crash loses the page cache).
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"time"

	"gsim/internal/faultfs"
	"gsim/internal/telemetry"
)

// Policy selects when committed records reach stable storage.
type Policy int

const (
	// FsyncAlways fsyncs before Commit returns (group-committed): an
	// acknowledged mutation survives kill -9. The default.
	FsyncAlways Policy = iota
	// FsyncInterval fsyncs on a background cadence: Commit returns after
	// the in-memory append, and a crash loses at most one interval.
	FsyncInterval
	// FsyncNever never fsyncs (except Sync and Close): durability is
	// whatever the OS page cache survives.
	FsyncNever
)

// String names the policy (the gsimd -fsync flag values).
func (p Policy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncInterval:
		return "interval"
	case FsyncNever:
		return "never"
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// ParsePolicy is the inverse of String.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "always":
		return FsyncAlways, nil
	case "interval":
		return FsyncInterval, nil
	case "never":
		return FsyncNever, nil
	}
	return 0, fmt.Errorf("wal: unknown fsync policy %q (always|interval|never)", s)
}

// Options parameterise a Writer.
type Options struct {
	// Policy selects the fsync discipline (default FsyncAlways).
	Policy Policy
	// Interval is the FsyncInterval flush cadence (default 50ms).
	Interval time.Duration
	// Metrics, when non-nil, receives the writer's durability timings:
	// Append framing, leader write+fsync batches, and group-commit
	// waits. A database shares one instance across its per-shard
	// writers (and across checkpoint rotations), so the histograms
	// describe the whole log set.
	Metrics *telemetry.WALMetrics
	// FS is the filesystem seam (nil = the real OS). Tests inject a
	// faultfs.Injector here to make append/fsync failures deterministic.
	FS faultfs.FS
}

// ErrClosed reports an append or commit against a closed writer.
var ErrClosed = errors.New("wal: writer is closed")

// maxRecordBytes bounds one record's payload — a length field beyond it
// is treated as corruption, not an allocation request. 64 MiB comfortably
// holds the largest graphs the text codec accepts.
const maxRecordBytes = 64 << 20

const frameHeader = 8 // length + CRC

// flushThreshold bounds the pending buffer: once it grows past this,
// Append writes it through (without fsync) so non-always policies do not
// accumulate unbounded memory between syncs.
const flushThreshold = 1 << 20

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Stats is a point-in-time snapshot of one writer's counters.
type Stats struct {
	// Bytes is the log's total size including not-yet-written pending
	// records.
	Bytes int64
	// Records counts every record appended to this log (including those
	// found on disk when the writer opened it).
	Records uint64
	// Unsynced counts appended records not yet known durable.
	Unsynced uint64
}

// Writer is one shard's append-only log. All methods are safe for
// concurrent use. Append/Commit are the mutation path: Append frames the
// record (callers serialise Appends per shard — the shard mutation lock
// does — so log order equals apply order), Commit blocks until the
// record is durable per policy.
type Writer struct {
	mu      sync.Mutex
	cond    *sync.Cond
	f       faultfs.File
	pending []byte
	spare   []byte // recycled pending buffer
	seq     uint64 // records appended (monotonic, includes preexisting)
	synced  uint64 // records known durable
	size    int64  // bytes written to the file (excludes pending)
	syncing bool   // a leader is flushing outside the lock
	err     error  // sticky: first IO failure poisons the writer

	opts  Options
	stopc chan struct{} // interval flusher shutdown
	done  chan struct{}
}

// Open opens (creating if absent) the log at path for appending,
// truncating any torn tail first. The returned writer's record count
// starts at the number of valid records already on disk.
func Open(path string, opts Options) (*Writer, error) {
	if opts.Interval <= 0 {
		opts.Interval = 50 * time.Millisecond
	}
	f, err := faultfs.Or(opts.FS).OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	recs, valid, err := scan(f, nil)
	if err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Truncate(valid); err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(valid, io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	w := &Writer{f: f, seq: recs, synced: recs, size: valid, opts: opts}
	w.cond = sync.NewCond(&w.mu)
	if opts.Policy == FsyncInterval {
		w.stopc = make(chan struct{})
		w.done = make(chan struct{})
		go w.flusher(w.stopc)
	}
	return w, nil
}

// flusher is the FsyncInterval background loop.
func (w *Writer) flusher(stopc <-chan struct{}) {
	defer close(w.done)
	t := time.NewTicker(w.opts.Interval)
	defer t.Stop()
	for {
		select {
		case <-stopc:
			return
		case <-t.C:
			w.Sync()
		}
	}
}

// Append frames payload into the pending buffer and returns the record's
// sequence number, the token Commit takes. The payload is copied; callers
// may reuse it immediately.
func (w *Writer) Append(payload []byte) (uint64, error) {
	if len(payload) > maxRecordBytes {
		return 0, fmt.Errorf("wal: record of %d bytes exceeds the %d limit", len(payload), maxRecordBytes)
	}
	if w.opts.Metrics != nil {
		start := time.Now()
		defer func() { w.opts.Metrics.Append.Observe(time.Since(start)) }()
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return 0, w.err
	}
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))
	if w.pending == nil && w.spare != nil {
		w.pending, w.spare = w.spare[:0], nil
	}
	w.pending = append(w.pending, hdr[:]...)
	w.pending = append(w.pending, payload...)
	w.seq++
	seq := w.seq
	if len(w.pending) >= flushThreshold && !w.syncing {
		w.flushLocked(false)
		if w.err != nil {
			return 0, w.err
		}
	}
	return seq, nil
}

// Commit blocks until record seq is durable under the writer's policy:
// group-committed fsync for FsyncAlways, an immediate return otherwise
// (the background cadence or the OS owns durability then).
func (w *Writer) Commit(seq uint64) error {
	if w.opts.Policy != FsyncAlways {
		w.mu.Lock()
		defer w.mu.Unlock()
		if w.synced >= seq {
			return nil
		}
		return w.err // nil unless the writer is poisoned
	}
	if w.opts.Metrics != nil {
		start := time.Now()
		defer func() { w.opts.Metrics.Wait.Observe(time.Since(start)) }()
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	for {
		if w.synced >= seq {
			return nil // durable — even if the writer failed later
		}
		if w.err != nil {
			return w.err
		}
		if w.syncing {
			w.cond.Wait()
			continue
		}
		w.flushLocked(true)
	}
}

// Sync forces pending records to stable storage regardless of policy.
func (w *Writer) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	for {
		if w.err != nil && !errors.Is(w.err, ErrClosed) {
			return w.err
		}
		target := w.seq
		if w.synced >= target {
			return nil
		}
		if w.err != nil {
			return w.err // closed with unsynced records (Close syncs first, so: poisoned)
		}
		if w.syncing {
			w.cond.Wait()
			continue
		}
		w.flushLocked(true)
	}
}

// flushLocked is the group-commit leader step: swap out the pending
// buffer, write (and optionally fsync) it outside the lock, publish the
// new durable horizon and wake every waiter. The caller holds w.mu; it
// is reacquired before returning.
func (w *Writer) flushLocked(fsync bool) {
	w.syncing = true
	buf := w.pending
	w.pending = nil
	target := w.seq
	w.mu.Unlock()
	var err error
	flushStart := time.Now()
	if len(buf) > 0 {
		_, err = w.f.Write(buf)
	}
	if err == nil && fsync {
		err = w.f.Sync()
	}
	if fsync && w.opts.Metrics != nil {
		w.opts.Metrics.Fsync.Observe(time.Since(flushStart))
	}
	w.mu.Lock()
	w.syncing = false
	if err != nil {
		if w.err == nil {
			w.err = fmt.Errorf("wal: flush: %w", err)
		}
	} else {
		w.size += int64(len(buf))
		if fsync && target > w.synced {
			w.synced = target
		}
	}
	if w.spare == nil && cap(buf) > 0 && cap(buf) <= 1<<20 {
		w.spare = buf[:0]
	}
	w.cond.Broadcast()
}

// Stats snapshots the writer's counters.
func (w *Writer) Stats() Stats {
	w.mu.Lock()
	defer w.mu.Unlock()
	return Stats{
		Bytes:    w.size + int64(len(w.pending)),
		Records:  w.seq,
		Unsynced: w.seq - w.synced,
	}
}

// Close syncs outstanding records and closes the file. Further appends
// fail with ErrClosed; commits for records synced before the close still
// succeed. Close is idempotent.
func (w *Writer) Close() error {
	if w.stopc != nil {
		w.mu.Lock()
		stopc := w.stopc
		w.stopc = nil
		w.mu.Unlock()
		if stopc != nil {
			close(stopc)
			<-w.done
		}
	}
	syncErr := w.Sync()
	w.mu.Lock()
	defer w.mu.Unlock()
	if errors.Is(w.err, ErrClosed) {
		return nil
	}
	if w.err == nil {
		w.err = ErrClosed
	}
	w.cond.Broadcast()
	if err := w.f.Close(); err != nil && syncErr == nil {
		syncErr = err
	}
	if syncErr != nil && !errors.Is(syncErr, ErrClosed) {
		return syncErr
	}
	return nil
}

// scan walks the frames of an open log from the start, calling fn (when
// non-nil) with each valid payload, and returns the record count and the
// byte offset of the longest valid prefix — the torn-tail boundary.
// Payloads handed to fn are only valid during the call.
func scan(f faultfs.File, fn func(payload []byte) error) (records uint64, valid int64, err error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return 0, 0, err
	}
	var (
		hdr [frameHeader]byte
		buf []byte
		off int64
	)
	for {
		if _, err := io.ReadFull(f, hdr[:]); err != nil {
			return records, off, nil // clean EOF or torn header: stop here
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		if n > maxRecordBytes {
			return records, off, nil // corrupt length: treat as tail
		}
		if uint32(cap(buf)) < n {
			buf = make([]byte, n)
		}
		buf = buf[:n]
		if _, err := io.ReadFull(f, buf); err != nil {
			return records, off, nil // torn payload
		}
		if crc32.Checksum(buf, castagnoli) != binary.LittleEndian.Uint32(hdr[4:8]) {
			return records, off, nil // bit rot or torn write
		}
		if fn != nil {
			if err := fn(buf); err != nil {
				return records, off, err
			}
		}
		records++
		off += int64(frameHeader) + int64(len(buf))
	}
}

// Replay streams every valid record payload of the log at path to fn,
// stopping cleanly at a torn or corrupt tail, and reports how many
// records it delivered. A missing file replays zero records: a shard
// that never logged is a shard with nothing to recover.
func Replay(path string, fn func(payload []byte) error) (uint64, error) {
	return ReplayFS(nil, path, fn)
}

// ReplayFS is Replay through an injectable filesystem (nil = the real
// OS), so recovery-under-fault tests exercise the same code path the
// database does.
func ReplayFS(fs faultfs.FS, path string, fn func(payload []byte) error) (uint64, error) {
	f, err := faultfs.Or(fs).Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, err
	}
	defer f.Close()
	n, _, err := scan(f, fn)
	return n, err
}
