package wal

import (
	"encoding/binary"
	"fmt"
	"math"

	"gsim/internal/graph"
)

// Op is the mutation kind a record carries.
type Op uint8

const (
	// OpStore inserts (or, on replay, upserts) a graph under an ID.
	OpStore Op = 1
	// OpUpdate replaces the graph under an existing ID.
	OpUpdate Op = 2
	// OpDelete removes the graph under an ID.
	OpDelete Op = 3
)

// String names the op for error messages.
func (op Op) String() string {
	switch op {
	case OpStore:
		return "store"
	case OpUpdate:
		return "update"
	case OpDelete:
		return "delete"
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// Record is one decoded mutation. G is nil for OpDelete.
type Record struct {
	Op Op
	ID uint64
	G  *graph.Graph
}

// Record payload layout (all integers uvarint unless noted):
//
//	kind   byte                      (OpStore | OpUpdate | OpDelete)
//	id     uvarint
//	-- OpDelete ends here --
//	name   len + bytes
//	labels count, then count × (len + bytes)   local label table
//	nv     count, then nv × label-table index  vertex labels
//	ne     count, then ne × (u, v, label-table index)
//
// Labels travel as strings (deduplicated per record in a local table), so
// a log never references a dictionary that may not survive the crash: on
// replay each label is re-interned into whatever dictionary the recovered
// database carries. Graph label alphabets are tiny in practice, so the
// table costs a few bytes, not a copy of the dictionary.

// AppendRecord encodes one mutation onto buf and returns the extended
// slice. dict resolves the graph's interned label IDs back to strings;
// it is unused for OpDelete (g nil).
func AppendRecord(buf []byte, op Op, id uint64, g *graph.Graph, dict *graph.Labels) []byte {
	buf = append(buf, byte(op))
	buf = binary.AppendUvarint(buf, id)
	if op == OpDelete {
		return buf
	}
	buf = appendString(buf, g.Name)

	// Build the local label table: record-local dense indexes for every
	// distinct label the graph uses, in first-use order over vertices then
	// edges.
	nv := g.NumVertices()
	edges := g.Edges()
	table := make(map[graph.ID]uint64, 8)
	var names []string
	local := func(id graph.ID) uint64 {
		if i, ok := table[id]; ok {
			return i
		}
		i := uint64(len(names))
		table[id] = i
		names = append(names, dict.Name(id))
		return i
	}
	vidx := make([]uint64, nv)
	for v := 0; v < nv; v++ {
		vidx[v] = local(g.VertexLabel(v))
	}
	eidx := make([]uint64, len(edges))
	for i, e := range edges {
		eidx[i] = local(e.Label)
	}

	buf = binary.AppendUvarint(buf, uint64(len(names)))
	for _, s := range names {
		buf = appendString(buf, s)
	}
	buf = binary.AppendUvarint(buf, uint64(nv))
	for _, i := range vidx {
		buf = binary.AppendUvarint(buf, i)
	}
	buf = binary.AppendUvarint(buf, uint64(len(edges)))
	for i, e := range edges {
		buf = binary.AppendUvarint(buf, uint64(e.U))
		buf = binary.AppendUvarint(buf, uint64(e.V))
		buf = binary.AppendUvarint(buf, eidx[i])
	}
	return buf
}

// DecodeRecord parses one record payload, interning its labels into dict.
// The payload has already passed the CRC, so a parse error means a codec
// bug or version skew, not bit rot — callers should fail recovery loudly.
func DecodeRecord(payload []byte, dict *graph.Labels) (Record, error) {
	d := decoder{buf: payload}
	op := Op(d.byte())
	id := d.uvarint()
	switch op {
	case OpDelete:
		if d.err == nil && len(d.buf) != 0 {
			d.err = fmt.Errorf("%d trailing bytes", len(d.buf))
		}
		if d.err != nil {
			return Record{}, fmt.Errorf("wal: bad %v record: %w", op, d.err)
		}
		return Record{Op: op, ID: id}, nil
	case OpStore, OpUpdate:
	default:
		return Record{}, fmt.Errorf("wal: unknown record kind %d", op)
	}

	name := d.string()
	nlabels := d.count("labels")
	ids := make([]graph.ID, nlabels)
	for i := range ids {
		ids[i] = dict.Intern(d.string())
	}
	label := func(what string) graph.ID {
		i := d.uvarint()
		if d.err == nil && i >= uint64(len(ids)) {
			d.err = fmt.Errorf("%s label index %d out of range [0,%d)", what, i, len(ids))
		}
		if d.err != nil {
			return 0
		}
		return ids[i]
	}

	nv := d.count("vertices")
	g := graph.New(int(nv))
	g.Name = name
	for v := uint64(0); v < nv && d.err == nil; v++ {
		g.AddVertex(label("vertex"))
	}
	ne := d.count("edges")
	for i := uint64(0); i < ne && d.err == nil; i++ {
		u, v := d.uvarint(), d.uvarint()
		lab := label("edge")
		if d.err != nil {
			break
		}
		if u > math.MaxInt32 || v > math.MaxInt32 {
			d.err = fmt.Errorf("edge endpoint (%d,%d) out of range", u, v)
			break
		}
		if err := g.AddEdge(int(u), int(v), lab); err != nil {
			d.err = err
			break
		}
	}
	if d.err == nil && len(d.buf) != 0 {
		d.err = fmt.Errorf("%d trailing bytes", len(d.buf))
	}
	if d.err != nil {
		return Record{}, fmt.Errorf("wal: bad %v record: %w", op, d.err)
	}
	return Record{Op: op, ID: id, G: g}, nil
}

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// decoder is a cursor with a sticky error; every accessor is a no-op once
// an error is set, so parse code reads linearly.
type decoder struct {
	buf []byte
	err error
}

func (d *decoder) byte() byte {
	if d.err != nil {
		return 0
	}
	if len(d.buf) == 0 {
		d.err = fmt.Errorf("truncated payload")
		return 0
	}
	b := d.buf[0]
	d.buf = d.buf[1:]
	return b
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf)
	if n <= 0 {
		d.err = fmt.Errorf("bad uvarint")
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

// count reads a uvarint that sizes an upcoming run of elements, bounding
// it by the bytes remaining so a corrupt count cannot drive a huge
// allocation.
func (d *decoder) count(what string) uint64 {
	v := d.uvarint()
	if d.err == nil && v > uint64(len(d.buf))+1 {
		d.err = fmt.Errorf("%s count %d exceeds remaining payload", what, v)
		return 0
	}
	return v
}

func (d *decoder) string() string {
	n := d.count("string")
	if d.err != nil {
		return ""
	}
	if n > uint64(len(d.buf)) {
		d.err = fmt.Errorf("string of %d bytes exceeds remaining payload", n)
		return ""
	}
	s := string(d.buf[:n])
	d.buf = d.buf[n:]
	return s
}
