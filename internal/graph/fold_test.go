package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFoldDirectedDistinguishesDirection(t *testing.T) {
	dict := NewLabels()
	mk := func(u, v int) *Graph {
		g := New(2)
		g.AddVertex(dict.Intern("A"))
		g.AddVertex(dict.Intern("B"))
		if err := AddDirectedEdge(g, dict, u, v, "r"); err != nil {
			t.Fatal(err)
		}
		return g
	}
	fwd := mk(0, 1)
	bwd := mk(1, 0)
	lf, _ := fwd.EdgeLabel(0, 1)
	lb, _ := bwd.EdgeLabel(0, 1)
	if lf == lb {
		t.Fatal("opposite arcs fold to the same label")
	}
	if dict.Name(lf) != "r|>" || dict.Name(lb) != "r|<" {
		t.Fatalf("labels %q, %q", dict.Name(lf), dict.Name(lb))
	}
}

func TestFoldDirectedMergesBidirectional(t *testing.T) {
	dict := NewLabels()
	g := New(2)
	g.AddVertex(dict.Intern("A"))
	g.AddVertex(dict.Intern("B"))
	if err := AddDirectedEdge(g, dict, 0, 1, "r"); err != nil {
		t.Fatal(err)
	}
	if err := AddDirectedEdge(g, dict, 1, 0, "r"); err != nil {
		t.Fatal(err)
	}
	l, _ := g.EdgeLabel(0, 1)
	if dict.Name(l) != "r|=" {
		t.Fatalf("bidirectional pair folded to %q", dict.Name(l))
	}
	if g.NumEdges() != 1 {
		t.Fatalf("edge count %d", g.NumEdges())
	}
	// Duplicate arc and mismatched base conflict.
	if err := AddDirectedEdge(g, dict, 0, 1, "r"); err == nil {
		t.Fatal("duplicate arc accepted")
	}
	g2 := New(2)
	g2.AddVertex(dict.Intern("A"))
	g2.AddVertex(dict.Intern("B"))
	_ = AddDirectedEdge(g2, dict, 0, 1, "r")
	if err := AddDirectedEdge(g2, dict, 1, 0, "other"); err == nil {
		t.Fatal("conflicting base label accepted")
	}
	if err := AddDirectedEdge(g2, dict, 1, 1, "r"); err == nil {
		t.Fatal("directed self-loop accepted")
	}
}

func TestWeightBucketsFold(t *testing.T) {
	dict := NewLabels()
	wb := WeightBuckets{Min: 0, Max: 10, Buckets: 5}
	cases := []struct {
		w    float64
		want string
	}{
		{-3, "w0"}, {0, "w0"}, {1.9, "w0"}, {2.1, "w1"},
		{5, "w2"}, {9.99, "w4"}, {10, "w4"}, {42, "w4"},
	}
	for _, tc := range cases {
		if got := dict.Name(wb.Fold(dict, tc.w)); got != tc.want {
			t.Errorf("Fold(%v) = %q, want %q", tc.w, got, tc.want)
		}
	}
}

func TestWeightBucketsDefaultsAndDegenerate(t *testing.T) {
	dict := NewLabels()
	wb := WeightBuckets{} // zero range, default buckets
	if got := dict.Name(wb.Fold(dict, 0.5)); got == "" {
		t.Fatal("empty label")
	}
	// Degenerate Min == Max must not divide by zero.
	wb = WeightBuckets{Min: 5, Max: 5, Buckets: 4}
	_ = wb.Fold(dict, 5)
}

func TestQuickWeightFoldMonotone(t *testing.T) {
	dict := NewLabels()
	wb := WeightBuckets{Min: 0, Max: 100, Buckets: 10}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := rng.Float64() * 100
		b := rng.Float64() * 100
		if a > b {
			a, b = b, a
		}
		la := dict.Name(wb.Fold(dict, a))
		lb := dict.Name(wb.Fold(dict, b))
		// Buckets are monotone: a ≤ b implies bucket(a) ≤ bucket(b).
		return la <= lb || len(la) < len(lb) // "w2" < "w10" lexically; length guards
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestAddWeightedEdge(t *testing.T) {
	dict := NewLabels()
	g := New(2)
	g.AddVertex(dict.Intern("A"))
	g.AddVertex(dict.Intern("B"))
	wb := WeightBuckets{Min: 0, Max: 1, Buckets: 4}
	if err := AddWeightedEdge(g, dict, wb, 0, 1, 0.7); err != nil {
		t.Fatal(err)
	}
	l, ok := g.EdgeLabel(0, 1)
	if !ok || dict.Name(l) != "w2" {
		t.Fatalf("weighted edge label %q", dict.Name(l))
	}
}
