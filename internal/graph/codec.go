package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The .gsim text format, one graph per stanza:
//
//	g <name> <numVertices>
//	v <index> <label>
//	e <u> <v> <label>
//	#  comment lines and blank lines are ignored
//
// Labels are free-form tokens without whitespace. The format is meant to be
// diff-friendly and easy to produce from other tools; the db package layers
// a faster binary snapshot on top.

// Write encodes g to w in .gsim text form, resolving labels through dict.
func Write(w io.Writer, g *Graph, dict *Labels) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "g %s %d\n", sanitizeName(g.Name), g.NumVertices())
	for v := 0; v < g.NumVertices(); v++ {
		fmt.Fprintf(bw, "v %d %s\n", v, dict.Name(g.VertexLabel(v)))
	}
	for _, e := range g.Edges() {
		fmt.Fprintf(bw, "e %d %d %s\n", e.U, e.V, dict.Name(e.Label))
	}
	return bw.Flush()
}

func sanitizeName(s string) string {
	if s == "" {
		return "unnamed"
	}
	return strings.Map(func(r rune) rune {
		if r == ' ' || r == '\t' || r == '\n' {
			return '_'
		}
		return r
	}, s)
}

// WriteAll encodes each graph in sequence.
func WriteAll(w io.Writer, gs []*Graph, dict *Labels) error {
	for _, g := range gs {
		if err := Write(w, g, dict); err != nil {
			return err
		}
	}
	return nil
}

// ReadAll parses every graph stanza from r, interning labels into dict.
func ReadAll(r io.Reader, dict *Labels) ([]*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var (
		out  []*Graph
		cur  *Graph
		line int
	)
	finish := func() error {
		if cur == nil {
			return nil
		}
		if err := cur.Validate(); err != nil {
			return err
		}
		out = append(out, cur)
		cur = nil
		return nil
	}
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		switch fields[0] {
		case "g":
			if err := finish(); err != nil {
				return nil, err
			}
			if len(fields) != 3 {
				return nil, fmt.Errorf("gsim:%d: want 'g <name> <n>', got %q", line, text)
			}
			n, err := strconv.Atoi(fields[2])
			if err != nil || n < 0 {
				return nil, fmt.Errorf("gsim:%d: bad vertex count %q", line, fields[2])
			}
			cur = New(n)
			cur.Name = fields[1]
		case "v":
			if cur == nil {
				return nil, fmt.Errorf("gsim:%d: vertex before graph header", line)
			}
			if len(fields) != 3 {
				return nil, fmt.Errorf("gsim:%d: want 'v <i> <label>', got %q", line, text)
			}
			idx, err := strconv.Atoi(fields[1])
			if err != nil || idx != cur.NumVertices() {
				return nil, fmt.Errorf("gsim:%d: vertices must appear in order, got index %q after %d", line, fields[1], cur.NumVertices())
			}
			cur.AddVertex(dict.Intern(fields[2]))
		case "e":
			if cur == nil {
				return nil, fmt.Errorf("gsim:%d: edge before graph header", line)
			}
			if len(fields) != 4 {
				return nil, fmt.Errorf("gsim:%d: want 'e <u> <v> <label>', got %q", line, text)
			}
			u, err1 := strconv.Atoi(fields[1])
			v, err2 := strconv.Atoi(fields[2])
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("gsim:%d: bad edge endpoints %q", line, text)
			}
			if err := cur.AddEdge(u, v, dict.Intern(fields[3])); err != nil {
				return nil, fmt.Errorf("gsim:%d: %v", line, err)
			}
		default:
			return nil, fmt.Errorf("gsim:%d: unknown record %q", line, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := finish(); err != nil {
		return nil, err
	}
	return out, nil
}
