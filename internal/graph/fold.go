package graph

import (
	"fmt"
	"math"
)

// Section II of the paper notes that GBDA "can also handle directed and
// weighted graphs by considering edge directions and weights as special
// labels". The helpers below implement that folding so callers can feed
// directed or weighted data through the undirected labeled model without
// inventing their own conventions.

// FoldDirectedLabel combines a base edge label with the relative direction
// of the edge. For an edge u→v stored as the undirected pair {min,max}, the
// direction flag records whether the arc leaves the smaller endpoint
// (">" ) or enters it ("<"); a bidirectional pair folds to "=".
func FoldDirectedLabel(dict *Labels, base string, fromSmaller, toSmaller bool) ID {
	switch {
	case fromSmaller && toSmaller:
		return dict.Intern(base + "|=")
	case fromSmaller:
		return dict.Intern(base + "|>")
	default:
		return dict.Intern(base + "|<")
	}
}

// AddDirectedEdge inserts the arc u→v into g with direction folded into the
// label, merging with an existing opposite arc of the same base label into
// the "=" (bidirectional) form. It is the directed-graph entry point
// promised by Section II.
func AddDirectedEdge(g *Graph, dict *Labels, u, v int, base string) error {
	if u == v {
		return fmt.Errorf("graph %q: directed self-loop on %d", g.Name, u)
	}
	fromSmaller := u < v
	if existing, ok := g.EdgeLabel(u, v); ok {
		opposite := base + "|>"
		if fromSmaller {
			opposite = base + "|<"
		}
		if dict.Name(existing) == opposite {
			return g.RelabelEdge(u, v, FoldDirectedLabel(dict, base, true, true))
		}
		return fmt.Errorf("graph %q: arc (%d,%d) conflicts with existing label %q", g.Name, u, v, dict.Name(existing))
	}
	return g.AddEdge(u, v, FoldDirectedLabel(dict, base, fromSmaller, !fromSmaller))
}

// WeightBuckets quantises edge weights into labeled buckets. The paper's
// model compares labels for equality only, so continuous weights must be
// discretised; Buckets controls the resolution/robustness trade.
type WeightBuckets struct {
	// Min and Max bound the expected weight range; weights outside are
	// clamped.
	Min, Max float64
	// Buckets is the number of equal-width intervals (default 16).
	Buckets int
}

// Fold maps a weight to its bucket label, e.g. "w7".
func (wb WeightBuckets) Fold(dict *Labels, weight float64) ID {
	n := wb.Buckets
	if n <= 0 {
		n = 16
	}
	lo, hi := wb.Min, wb.Max
	if hi <= lo {
		hi = lo + 1
	}
	x := (weight - lo) / (hi - lo)
	b := int(math.Floor(x * float64(n)))
	if b < 0 {
		b = 0
	}
	if b >= n {
		b = n - 1
	}
	return dict.Intern(fmt.Sprintf("w%d", b))
}

// AddWeightedEdge inserts {u,v} with the weight folded to a bucket label.
func AddWeightedEdge(g *Graph, dict *Labels, wb WeightBuckets, u, v int, weight float64) error {
	return g.AddEdge(u, v, wb.Fold(dict, weight))
}
