package graph

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func buildTriangle(t testing.TB, dict *Labels) *Graph {
	t.Helper()
	g := New(3)
	g.Name = "tri"
	g.AddVertex(dict.Intern("A"))
	g.AddVertex(dict.Intern("B"))
	g.AddVertex(dict.Intern("C"))
	g.MustAddEdge(0, 1, dict.Intern("x"))
	g.MustAddEdge(1, 2, dict.Intern("y"))
	g.MustAddEdge(0, 2, dict.Intern("z"))
	return g
}

func TestLabelsInternRoundTrip(t *testing.T) {
	dict := NewLabels()
	a := dict.Intern("A")
	b := dict.Intern("B")
	if a == b {
		t.Fatalf("distinct labels share ID %d", a)
	}
	if got := dict.Intern("A"); got != a {
		t.Fatalf("re-intern of A = %d, want %d", got, a)
	}
	if dict.Name(a) != "A" || dict.Name(b) != "B" {
		t.Fatalf("Name round trip failed: %q %q", dict.Name(a), dict.Name(b))
	}
	if id, ok := dict.Lookup("A"); !ok || id != a {
		t.Fatalf("Lookup(A) = %d,%v", id, ok)
	}
	if _, ok := dict.Lookup("missing"); ok {
		t.Fatal("Lookup(missing) reported present")
	}
}

func TestLabelsEpsilonReserved(t *testing.T) {
	dict := NewLabels()
	if got := dict.Intern(EpsilonName); got != Epsilon {
		t.Fatalf("Intern(ε) = %d, want %d", got, Epsilon)
	}
	if dict.Name(Epsilon) != EpsilonName {
		t.Fatalf("Name(0) = %q", dict.Name(Epsilon))
	}
	for _, s := range dict.Names() {
		if s == EpsilonName {
			t.Fatal("Names() must exclude ε")
		}
	}
}

func TestLabelsConcurrentIntern(t *testing.T) {
	dict := NewLabels()
	done := make(chan ID)
	for i := 0; i < 16; i++ {
		go func() { done <- dict.Intern("shared") }()
	}
	first := <-done
	for i := 1; i < 16; i++ {
		if got := <-done; got != first {
			t.Fatalf("concurrent interning returned %d and %d", first, got)
		}
	}
}

func TestGraphBasicOps(t *testing.T) {
	dict := NewLabels()
	g := buildTriangle(t, dict)
	if g.NumVertices() != 3 || g.NumEdges() != 3 {
		t.Fatalf("got |V|=%d |E|=%d", g.NumVertices(), g.NumEdges())
	}
	if got := g.Degree(1); got != 2 {
		t.Fatalf("Degree(1) = %d, want 2", got)
	}
	if l, ok := g.EdgeLabel(2, 0); !ok || dict.Name(l) != "z" {
		t.Fatalf("EdgeLabel(2,0) = %v,%v", l, ok)
	}
	if g.AvgDegree() != 2 {
		t.Fatalf("AvgDegree = %v, want 2", g.AvgDegree())
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestGraphRejectsLoopsAndDuplicates(t *testing.T) {
	dict := NewLabels()
	g := buildTriangle(t, dict)
	if err := g.AddEdge(1, 1, dict.Intern("x")); err == nil {
		t.Fatal("self-loop accepted")
	}
	if err := g.AddEdge(0, 1, dict.Intern("q")); err == nil {
		t.Fatal("duplicate edge accepted")
	}
	if err := g.AddEdge(0, 9, dict.Intern("q")); err == nil {
		t.Fatal("out-of-range edge accepted")
	}
	if g.NumEdges() != 3 {
		t.Fatalf("edge count changed to %d after rejected inserts", g.NumEdges())
	}
}

func TestGraphEditOperations(t *testing.T) {
	dict := NewLabels()
	g := buildTriangle(t, dict)
	// RE
	if err := g.RelabelEdge(0, 1, dict.Intern("w")); err != nil {
		t.Fatal(err)
	}
	if l, _ := g.EdgeLabel(1, 0); dict.Name(l) != "w" {
		t.Fatalf("edge relabel not visible from both sides: %q", dict.Name(l))
	}
	// DE
	if err := g.RemoveEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	if g.HasEdge(2, 1) || g.NumEdges() != 2 {
		t.Fatal("edge removal failed")
	}
	if err := g.RemoveEdge(1, 2); err == nil {
		t.Fatal("double removal accepted")
	}
	// RV
	g.RelabelVertex(0, dict.Intern("Q"))
	if dict.Name(g.VertexLabel(0)) != "Q" {
		t.Fatal("vertex relabel failed")
	}
	// AV + AE
	v := g.AddVertex(dict.Intern("Z"))
	g.MustAddEdge(v, 0, dict.Intern("k"))
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate after edits: %v", err)
	}
}

func TestGraphCloneIsDeep(t *testing.T) {
	dict := NewLabels()
	g := buildTriangle(t, dict)
	c := g.Clone()
	if !g.Equal(c) {
		t.Fatal("clone not equal to original")
	}
	c.RelabelVertex(0, dict.Intern("MUT"))
	if err := c.RelabelEdge(0, 1, dict.Intern("mut")); err != nil {
		t.Fatal(err)
	}
	if g.Equal(c) {
		t.Fatal("mutating clone affected original comparison")
	}
	if dict.Name(g.VertexLabel(0)) != "A" {
		t.Fatal("clone shares vertex label storage with original")
	}
	if l, _ := g.EdgeLabel(0, 1); dict.Name(l) != "x" {
		t.Fatal("clone shares adjacency storage with original")
	}
}

func TestGraphEqualDetectsDifferences(t *testing.T) {
	dict := NewLabels()
	a := buildTriangle(t, dict)
	b := buildTriangle(t, dict)
	if !a.Equal(b) {
		t.Fatal("identical graphs not Equal")
	}
	if err := b.RemoveEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if a.Equal(b) {
		t.Fatal("Equal ignored edge count")
	}
	b = buildTriangle(t, dict)
	if err := b.RelabelEdge(0, 1, dict.Intern("other")); err != nil {
		t.Fatal(err)
	}
	if a.Equal(b) {
		t.Fatal("Equal ignored edge label")
	}
}

func TestConnected(t *testing.T) {
	dict := NewLabels()
	g := buildTriangle(t, dict)
	if !g.Connected() {
		t.Fatal("triangle reported disconnected")
	}
	g.AddVertex(dict.Intern("I"))
	if g.Connected() {
		t.Fatal("isolated vertex not detected")
	}
	empty := New(0)
	if !empty.Connected() {
		t.Fatal("empty graph should count as connected")
	}
}

func TestEdgesCanonical(t *testing.T) {
	dict := NewLabels()
	g := buildTriangle(t, dict)
	es := g.Edges()
	if len(es) != 3 {
		t.Fatalf("Edges() returned %d, want 3", len(es))
	}
	for i, e := range es {
		if e.U >= e.V {
			t.Fatalf("edge %d not canonical: %+v", i, e)
		}
		if i > 0 && (es[i-1].U > e.U || (es[i-1].U == e.U && es[i-1].V > e.V)) {
			t.Fatalf("edges unsorted at %d", i)
		}
	}
}

func TestCodecRoundTrip(t *testing.T) {
	dict := NewLabels()
	g1 := buildTriangle(t, dict)
	g2 := New(2)
	g2.Name = "pair"
	g2.AddVertex(dict.Intern("A"))
	g2.AddVertex(dict.Intern("B"))
	g2.MustAddEdge(0, 1, dict.Intern("x"))

	var buf bytes.Buffer
	if err := WriteAll(&buf, []*Graph{g1, g2}, dict); err != nil {
		t.Fatal(err)
	}
	dict2 := NewLabels()
	back, err := ReadAll(&buf, dict2)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 {
		t.Fatalf("parsed %d graphs, want 2", len(back))
	}
	if back[0].Name != "tri" || back[0].NumVertices() != 3 || back[0].NumEdges() != 3 {
		t.Fatalf("graph 0 mismatch: %v", back[0])
	}
	l, ok := back[1].EdgeLabel(0, 1)
	if !ok || dict2.Name(l) != "x" {
		t.Fatalf("edge label lost in round trip: %v %v", l, ok)
	}
}

func TestCodecRejectsMalformed(t *testing.T) {
	cases := []string{
		"v 0 A",                        // vertex before header
		"g a 1\nv 1 A",                 // out-of-order vertex index
		"g a 2\nv 0 A\nv 1 B\ne 0 0 x", // self-loop
		"g a 1\nv 0 A\ne 0 5 x",        // dangling edge
		"g a 1\nz nonsense",            // unknown record
		"g a",                          // short header
	}
	for _, src := range cases {
		if _, err := ReadAll(strings.NewReader(src), NewLabels()); err == nil {
			t.Errorf("malformed input accepted: %q", src)
		}
	}
}

func TestCodecSkipsCommentsAndBlanks(t *testing.T) {
	src := "# header comment\n\ng one 1\n  \nv 0 A\n# trailing\n"
	gs, err := ReadAll(strings.NewReader(src), NewLabels())
	if err != nil || len(gs) != 1 {
		t.Fatalf("got %v, %v", gs, err)
	}
}

func TestExtendIsComplete(t *testing.T) {
	dict := NewLabels()
	g := buildTriangle(t, dict)
	e := Extend(g, 2)
	n := e.NumVertices()
	if n != 5 {
		t.Fatalf("extended |V| = %d, want 5", n)
	}
	if e.NumEdges() != n*(n-1)/2 {
		t.Fatalf("extended graph not complete: %d edges", e.NumEdges())
	}
	// Original labels survive; added vertices are virtual.
	for v := 0; v < 3; v++ {
		if e.VertexLabel(v) != g.VertexLabel(v) {
			t.Fatalf("vertex %d label changed", v)
		}
	}
	for v := 3; v < 5; v++ {
		if e.VertexLabel(v) != Epsilon {
			t.Fatalf("vertex %d not virtual", v)
		}
	}
	// Pre-existing edges keep labels; new ones are ε.
	if l, _ := e.EdgeLabel(0, 1); dict.Name(l) != "x" {
		t.Fatal("existing edge label lost")
	}
	if l, _ := e.EdgeLabel(3, 4); l != Epsilon {
		t.Fatal("virtual edge not ε-labeled")
	}
	if err := e.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestExtendPairSizes(t *testing.T) {
	dict := NewLabels()
	small := New(2)
	small.AddVertex(dict.Intern("A"))
	small.AddVertex(dict.Intern("B"))
	big := buildTriangle(t, dict)
	e1, e2 := ExtendPair(big, small) // order must not matter
	if e1.NumVertices() != 3 || e2.NumVertices() != 3 {
		t.Fatalf("extended sizes %d, %d; want 3, 3", e1.NumVertices(), e2.NumVertices())
	}
}

func TestAlphabets(t *testing.T) {
	dict := NewLabels()
	g := buildTriangle(t, dict)
	lv, le := Alphabets(g)
	if lv != 3 || le != 3 {
		t.Fatalf("Alphabets = %d,%d; want 3,3", lv, le)
	}
	e := Extend(g, 1)
	lv, le = Alphabets(e)
	if lv != 3 || le != 3 {
		t.Fatalf("Alphabets must exclude ε: got %d,%d", lv, le)
	}
}

// randomGraph builds a random simple graph for property tests.
func randomGraph(rng *rand.Rand, dict *Labels, n, maxEdges, labels int) *Graph {
	g := New(n)
	for i := 0; i < n; i++ {
		g.AddVertex(dict.Intern(string(rune('A' + rng.Intn(labels)))))
	}
	for tries := 0; tries < maxEdges; tries++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v || g.HasEdge(u, v) {
			continue
		}
		g.MustAddEdge(u, v, dict.Intern(string(rune('a'+rng.Intn(labels)))))
	}
	return g
}

func TestQuickCodecRoundTripPreservesGraph(t *testing.T) {
	dict := NewLabels()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(12)
		g := randomGraph(rng, dict, n, 2*n, 4)
		g.Name = "q"
		var buf bytes.Buffer
		if err := Write(&buf, g, dict); err != nil {
			return false
		}
		back, err := ReadAll(&buf, dict) // same dict: IDs comparable
		if err != nil || len(back) != 1 {
			return false
		}
		return g.Equal(back[0])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickValidateAfterRandomEdits(t *testing.T) {
	dict := NewLabels()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, dict, 3+rng.Intn(10), 15, 3)
		for i := 0; i < 10; i++ {
			es := g.Edges()
			switch rng.Intn(3) {
			case 0:
				if len(es) > 0 {
					e := es[rng.Intn(len(es))]
					if err := g.RemoveEdge(int(e.U), int(e.V)); err != nil {
						return false
					}
				}
			case 1:
				u, v := rng.Intn(g.NumVertices()), rng.Intn(g.NumVertices())
				if u != v && !g.HasEdge(u, v) {
					g.MustAddEdge(u, v, dict.Intern("r"))
				}
			case 2:
				if len(es) > 0 {
					e := es[rng.Intn(len(es))]
					if err := g.RelabelEdge(int(e.U), int(e.V), dict.Intern("m")); err != nil {
						return false
					}
				}
			}
		}
		return g.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
