// Package graph implements the simple labeled undirected graph model from
// Section II of Li et al., "An Efficient Probabilistic Approach for Graph
// Similarity Search" (ICDE 2018): vertex- and edge-labeled simple graphs, a
// shared label dictionary, a text codec, and the extended graphs of Section IV.
//
// Labels are interned: user-facing labels are strings, while every hot path
// works on dense int32 label IDs handed out by a Labels dictionary. ID 0 is
// reserved for the virtual label ε of Definition 5, which never belongs to
// the vertex-label alphabet LV or the edge-label alphabet LE.
package graph

import (
	"fmt"
	"sort"
	"sync"
)

// ID is an interned label identifier. The zero ID is the virtual label ε.
type ID = int32

// Epsilon is the interned ID of the virtual label ε from Section II of the
// paper. Virtual vertices and edges (Definition 5) carry this label; it is a
// member of neither LV nor LE.
const Epsilon ID = 0

// EpsilonName is the string form of the virtual label.
const EpsilonName = "ε"

// Labels interns label strings to dense int32 IDs shared by all graphs of a
// database, so that label equality is integer equality. It is safe for
// concurrent use; lookups after the build phase take only a read lock.
type Labels struct {
	mu   sync.RWMutex
	ids  map[string]ID
	strs []string
}

// NewLabels returns a dictionary containing only the virtual label ε.
func NewLabels() *Labels {
	return &Labels{
		ids:  map[string]ID{EpsilonName: Epsilon},
		strs: []string{EpsilonName},
	}
}

// Intern returns the ID for s, assigning a fresh one on first use.
// Interning the ε name returns Epsilon.
func (l *Labels) Intern(s string) ID {
	l.mu.RLock()
	id, ok := l.ids[s]
	l.mu.RUnlock()
	if ok {
		return id
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if id, ok = l.ids[s]; ok {
		return id
	}
	id = ID(len(l.strs))
	l.ids[s] = id
	l.strs = append(l.strs, s)
	return id
}

// Lookup returns the ID for s without interning. The second result reports
// whether s is known.
func (l *Labels) Lookup(s string) (ID, bool) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	id, ok := l.ids[s]
	return id, ok
}

// Name returns the string for id. It panics if id was never interned,
// because that always indicates a programming error, not bad input.
func (l *Labels) Name(id ID) string {
	l.mu.RLock()
	defer l.mu.RUnlock()
	if id < 0 || int(id) >= len(l.strs) {
		panic(fmt.Sprintf("graph: label ID %d out of range [0,%d)", id, len(l.strs)))
	}
	return l.strs[id]
}

// Len reports the number of interned labels, including ε.
func (l *Labels) Len() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return len(l.strs)
}

// Names returns all interned label strings except ε, sorted.
func (l *Labels) Names() []string {
	l.mu.RLock()
	out := make([]string, 0, len(l.strs)-1)
	for i, s := range l.strs {
		if ID(i) != Epsilon {
			out = append(out, s)
		}
	}
	l.mu.RUnlock()
	sort.Strings(out)
	return out
}

// Alphabets reports |LV| and |LE|: the number of distinct non-virtual vertex
// and edge labels actually used by the given graphs. The paper's model
// (Lemma 3, Eq. 33) needs both to size the branch-type universe D.
func Alphabets(gs ...*Graph) (lv, le int) {
	vs := make(map[ID]struct{})
	es := make(map[ID]struct{})
	for _, g := range gs {
		for _, lab := range g.vlabels {
			if lab != Epsilon {
				vs[lab] = struct{}{}
			}
		}
		for u := 0; u < g.NumVertices(); u++ {
			for _, h := range g.adj[u] {
				if int(h.To) > u && h.Label != Epsilon {
					es[h.Label] = struct{}{}
				}
			}
		}
	}
	return len(vs), len(es)
}
