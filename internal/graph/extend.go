package graph

// Extend materialises the extended graph G{k} of Definition 5: k isolated
// virtual (ε-labeled) vertices are appended, then a virtual edge is inserted
// between every pair of non-adjacent vertices, so the result is a complete
// graph on |V|+k vertices.
//
// The paper proves (Theorems 1 and 2) that GED and GBD are invariant under
// this extension, so production code never calls Extend; it exists so tests
// can verify both theorems directly. Beware the quadratic blow-up: only call
// it on small graphs.
func Extend(g *Graph, k int) *Graph {
	e := g.Clone()
	e.Name = g.Name + "+ext"
	for i := 0; i < k; i++ {
		e.AddVertex(Epsilon)
	}
	n := e.NumVertices()
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if !e.HasEdge(u, v) {
				e.MustAddEdge(u, v, Epsilon)
			}
		}
	}
	return e
}

// ExtendPair returns G1' = G1{|V2|-|V1|} and G2' = G2{0} for |V1| <= |V2|,
// the canonical extended pair of Section IV (swapping arguments if needed so
// the first result always extends the smaller graph).
func ExtendPair(g1, g2 *Graph) (*Graph, *Graph) {
	if g1.NumVertices() > g2.NumVertices() {
		g1, g2 = g2, g1
	}
	return Extend(g1, g2.NumVertices()-g1.NumVertices()), Extend(g2, 0)
}
