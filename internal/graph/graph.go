package graph

import (
	"fmt"
	"sort"
)

// Halfedge is one directed half of an undirected edge as stored in an
// adjacency list: the opposite endpoint and the interned edge label.
type Halfedge struct {
	To    int32
	Label ID
}

// Graph is a simple labeled undirected graph (Section II of the paper):
// no self-loops, at most one edge per vertex pair, and interned labels on
// every vertex and edge. Vertices are dense indices 0..NumVertices()-1.
//
// Directed or weighted graphs are represented, as the paper prescribes, by
// folding direction or weight into the edge label string before interning.
//
// The zero value is an empty graph ready for use.
type Graph struct {
	// Name identifies the graph inside a database (e.g. "aids-0042").
	Name string

	vlabels []ID         // vertex labels, index = vertex
	adj     [][]Halfedge // adjacency lists, kept sorted by (To, Label)
	edges   int
}

// New returns an empty graph with capacity hints for n vertices.
func New(n int) *Graph {
	return &Graph{
		vlabels: make([]ID, 0, n),
		adj:     make([][]Halfedge, 0, n),
	}
}

// NumVertices reports |V|.
func (g *Graph) NumVertices() int { return len(g.vlabels) }

// NumEdges reports |E|.
func (g *Graph) NumEdges() int { return g.edges }

// AddVertex appends a vertex with the given interned label and returns its
// index.
func (g *Graph) AddVertex(label ID) int {
	g.vlabels = append(g.vlabels, label)
	g.adj = append(g.adj, nil)
	return len(g.vlabels) - 1
}

// VertexLabel returns the interned label of vertex v.
func (g *Graph) VertexLabel(v int) ID { return g.vlabels[v] }

// RelabelVertex sets vertex v's label (edit operation RV of Definition 1).
func (g *Graph) RelabelVertex(v int, label ID) { g.vlabels[v] = label }

// Degree reports the number of edges incident to v.
func (g *Graph) Degree(v int) int { return len(g.adj[v]) }

// Neighbors returns v's adjacency list. The slice is owned by the graph and
// must not be modified.
func (g *Graph) Neighbors(v int) []Halfedge { return g.adj[v] }

// AddEdge inserts the undirected edge {u,v} with the given label (edit
// operation AE). It reports an error for self-loops, out-of-range endpoints,
// or duplicate edges, keeping the graph simple.
func (g *Graph) AddEdge(u, v int, label ID) error {
	if u == v {
		return fmt.Errorf("graph %q: self-loop on vertex %d", g.Name, u)
	}
	if u < 0 || v < 0 || u >= len(g.vlabels) || v >= len(g.vlabels) {
		return fmt.Errorf("graph %q: edge (%d,%d) out of range [0,%d)", g.Name, u, v, len(g.vlabels))
	}
	if g.HasEdge(u, v) {
		return fmt.Errorf("graph %q: duplicate edge (%d,%d)", g.Name, u, v)
	}
	g.insertHalf(u, Halfedge{To: int32(v), Label: label})
	g.insertHalf(v, Halfedge{To: int32(u), Label: label})
	g.edges++
	return nil
}

// MustAddEdge is AddEdge for construction code where the inputs are known
// valid; it panics on error.
func (g *Graph) MustAddEdge(u, v int, label ID) {
	if err := g.AddEdge(u, v, label); err != nil {
		panic(err)
	}
}

func (g *Graph) insertHalf(u int, h Halfedge) {
	list := g.adj[u]
	i := sort.Search(len(list), func(i int) bool {
		if list[i].To != h.To {
			return list[i].To > h.To
		}
		return list[i].Label >= h.Label
	})
	list = append(list, Halfedge{})
	copy(list[i+1:], list[i:])
	list[i] = h
	g.adj[u] = list
}

// HasEdge reports whether edge {u,v} exists.
func (g *Graph) HasEdge(u, v int) bool {
	_, ok := g.EdgeLabel(u, v)
	return ok
}

// EdgeLabel returns the label of edge {u,v} and whether the edge exists.
func (g *Graph) EdgeLabel(u, v int) (ID, bool) {
	if u < 0 || u >= len(g.adj) || v < 0 || v >= len(g.adj) {
		return 0, false
	}
	list := g.adj[u]
	i := sort.Search(len(list), func(i int) bool { return list[i].To >= int32(v) })
	if i < len(list) && list[i].To == int32(v) {
		return list[i].Label, true
	}
	return 0, false
}

// RelabelEdge sets the label of the existing edge {u,v} (edit operation RE).
func (g *Graph) RelabelEdge(u, v int, label ID) error {
	if !g.setHalfLabel(u, v, label) || !g.setHalfLabel(v, u, label) {
		return fmt.Errorf("graph %q: relabel of missing edge (%d,%d)", g.Name, u, v)
	}
	return nil
}

func (g *Graph) setHalfLabel(u, v int, label ID) bool {
	list := g.adj[u]
	i := sort.Search(len(list), func(i int) bool { return list[i].To >= int32(v) })
	if i < len(list) && list[i].To == int32(v) {
		list[i].Label = label
		return true
	}
	return false
}

// RemoveEdge deletes edge {u,v} (edit operation DE).
func (g *Graph) RemoveEdge(u, v int) error {
	if !g.removeHalf(u, v) || !g.removeHalf(v, u) {
		return fmt.Errorf("graph %q: removal of missing edge (%d,%d)", g.Name, u, v)
	}
	g.edges--
	return nil
}

func (g *Graph) removeHalf(u, v int) bool {
	list := g.adj[u]
	i := sort.Search(len(list), func(i int) bool { return list[i].To >= int32(v) })
	if i < len(list) && list[i].To == int32(v) {
		g.adj[u] = append(list[:i], list[i+1:]...)
		return true
	}
	return false
}

// Edge is an undirected edge in canonical (U < V) form.
type Edge struct {
	U, V  int32
	Label ID
}

// Edges returns all edges in canonical form, sorted by (U, V).
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, g.edges)
	for u := range g.adj {
		for _, h := range g.adj[u] {
			if int(h.To) > u {
				out = append(out, Edge{U: int32(u), V: h.To, Label: h.Label})
			}
		}
	}
	return out
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		Name:    g.Name,
		vlabels: append([]ID(nil), g.vlabels...),
		adj:     make([][]Halfedge, len(g.adj)),
		edges:   g.edges,
	}
	for i, list := range g.adj {
		c.adj[i] = append([]Halfedge(nil), list...)
	}
	return c
}

// Equal reports whether g and h are identical labeled graphs under the
// identity vertex mapping (same vertex count, same labels, same edges).
// This is structural equality, not isomorphism.
func (g *Graph) Equal(h *Graph) bool {
	if g.NumVertices() != h.NumVertices() || g.edges != h.edges {
		return false
	}
	for i, l := range g.vlabels {
		if h.vlabels[i] != l {
			return false
		}
	}
	for u := range g.adj {
		if len(g.adj[u]) != len(h.adj[u]) {
			return false
		}
		for i, he := range g.adj[u] {
			if h.adj[u][i] != he {
				return false
			}
		}
	}
	return true
}

// Validate checks the internal invariants: symmetric sorted adjacency, no
// loops, no duplicates, consistent edge count. It is used by tests and by
// the codec after parsing.
func (g *Graph) Validate() error {
	halves := 0
	for u := range g.adj {
		prev := Halfedge{To: -1}
		for _, h := range g.adj[u] {
			if int(h.To) == u {
				return fmt.Errorf("graph %q: self-loop at %d", g.Name, u)
			}
			if int(h.To) < 0 || int(h.To) >= len(g.vlabels) {
				return fmt.Errorf("graph %q: dangling half-edge %d->%d", g.Name, u, h.To)
			}
			if h.To == prev.To {
				return fmt.Errorf("graph %q: duplicate edge (%d,%d)", g.Name, u, h.To)
			}
			if h.To < prev.To {
				return fmt.Errorf("graph %q: unsorted adjacency at %d", g.Name, u)
			}
			back, ok := g.EdgeLabel(int(h.To), u)
			if !ok || back != h.Label {
				return fmt.Errorf("graph %q: asymmetric edge (%d,%d)", g.Name, u, h.To)
			}
			prev = h
			halves++
		}
	}
	if halves != 2*g.edges {
		return fmt.Errorf("graph %q: edge count %d != %d half-edges/2", g.Name, g.edges, halves)
	}
	return nil
}

// AvgDegree reports the average vertex degree 2|E|/|V| (the d of Eq. 2 and
// Theorem 3), or 0 for the empty graph.
func (g *Graph) AvgDegree() float64 {
	if len(g.vlabels) == 0 {
		return 0
	}
	return 2 * float64(g.edges) / float64(len(g.vlabels))
}

// Connected reports whether g is connected (or empty).
func (g *Graph) Connected() bool {
	n := g.NumVertices()
	if n == 0 {
		return true
	}
	seen := make([]bool, n)
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, h := range g.adj[u] {
			if !seen[h.To] {
				seen[h.To] = true
				count++
				stack = append(stack, int(h.To))
			}
		}
	}
	return count == n
}

// String returns a short human-readable summary.
func (g *Graph) String() string {
	return fmt.Sprintf("graph %q (|V|=%d |E|=%d)", g.Name, g.NumVertices(), g.edges)
}
