package graph

import (
	"bytes"
	"math/rand"
	"testing"
)

func benchGraph(n int) (*Graph, *Labels) {
	dict := NewLabels()
	rng := rand.New(rand.NewSource(1))
	g := New(n)
	for i := 0; i < n; i++ {
		g.AddVertex(dict.Intern(string(rune('A' + rng.Intn(8)))))
	}
	for i := 0; i < 4*n; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v && !g.HasEdge(u, v) {
			g.MustAddEdge(u, v, dict.Intern(string(rune('a'+rng.Intn(8)))))
		}
	}
	return g, dict
}

func BenchmarkAddEdge(b *testing.B) {
	dict := NewLabels()
	l := dict.Intern("x")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := New(64)
		for v := 0; v < 64; v++ {
			g.AddVertex(l)
		}
		for v := 1; v < 64; v++ {
			g.MustAddEdge(v, v/2, l)
		}
	}
}

func BenchmarkEdgeLabelLookup(b *testing.B) {
	g, _ := benchGraph(1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = g.EdgeLabel(i%1000, (i*7)%1000)
	}
}

func BenchmarkClone1000(b *testing.B) {
	g, _ := benchGraph(1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.Clone()
	}
}

func BenchmarkCodecWrite(b *testing.B) {
	g, dict := benchGraph(500)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := Write(&buf, g, dict); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCodecRead(b *testing.B) {
	g, dict := benchGraph(500)
	var buf bytes.Buffer
	if err := Write(&buf, g, dict); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReadAll(bytes.NewReader(data), NewLabels()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkValidate(b *testing.B) {
	g, _ := benchGraph(1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := g.Validate(); err != nil {
			b.Fatal(err)
		}
	}
}
