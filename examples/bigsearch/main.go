// Bigsearch: the scalability story of the paper's Figures 8-9. Databases of
// increasingly large scale-free graphs (the protein-network regime from the
// introduction, where exact GED is hopeless) are searched with GBDA and
// with the quadratic baselines, showing GBDA's near-flat per-query latency
// while the baselines grow superlinearly and eventually trip their
// resource guard.
package main

import (
	"errors"
	"fmt"
	"log"
	"time"

	"gsim"
	"gsim/internal/dataset"
)

func main() {
	sizes := []int{500, 1000, 2000}
	fmt.Printf("%8s  %14s  %14s  %14s\n", "size", "GBDA(τ̂=10)", "greedysort", "seriation")

	for i, size := range sizes {
		cfg, err := dataset.SynSubset("syn1", size, 10, int64(300+i))
		if err != nil {
			log.Fatal(err)
		}
		ds, err := dataset.Generate(cfg)
		if err != nil {
			log.Fatal(err)
		}
		d := gsim.FromCollection(ds.Col, ds.DBGraphs)
		if err := d.BuildPriors(gsim.OfflineConfig{TauMax: 10, SamplePairs: 2000}); err != nil {
			log.Fatal(err)
		}
		q := d.Query(ds.Queries[0])

		cells := make([]string, 0, 3)
		for _, opt := range []gsim.SearchOptions{
			{Method: gsim.GBDA, Tau: 10, Gamma: 0.8},
			{Method: gsim.GreedySort, Tau: 10, BaselineMaxVertices: 1500},
			{Method: gsim.Seriation, Tau: 10, BaselineMaxVertices: 1500},
		} {
			t0 := time.Now()
			_, err := d.Search(q, opt)
			switch {
			case errors.Is(err, gsim.ErrTooLarge):
				cells = append(cells, "OOM-guard")
			case err != nil:
				log.Fatal(err)
			default:
				cells = append(cells, time.Since(t0).Round(time.Microsecond).String())
			}
		}
		fmt.Printf("%8d  %14s  %14s  %14s\n", size, cells[0], cells[1], cells[2])
	}
	fmt.Println("\nGBDA's per-pair cost is O(n·d + τ̂³); the baselines build O(n²)")
	fmt.Println("state per pair, which is the wall the paper hits at 20K vertices.")
}
