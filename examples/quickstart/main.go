// Quickstart: build a small graph database, fit the offline priors, and run
// a probabilistic similarity search — the minimal end-to-end GBDA flow.
package main

import (
	"context"
	"fmt"
	"log"

	"gsim"
)

func main() {
	d := gsim.NewDatabase("quickstart")

	// A tiny "molecule" library. Each graph is a labeled undirected
	// graph; labels are free-form strings interned by the database.
	addChain := func(name string, atoms []string, bonds []string) {
		b := d.NewGraph(name)
		ids := make([]int, len(atoms))
		for i, a := range atoms {
			ids[i] = b.AddVertex(a)
		}
		for i, bond := range bonds {
			if err := b.AddEdge(ids[i], ids[i+1], bond); err != nil {
				log.Fatal(err)
			}
		}
		if _, err := b.Store(); err != nil {
			log.Fatal(err)
		}
	}
	addChain("ethanol", []string{"C", "C", "O"}, []string{"single", "single"})
	addChain("acetaldehyde", []string{"C", "C", "O"}, []string{"single", "double"})
	addChain("propanol", []string{"C", "C", "C", "O"}, []string{"single", "single", "single"})
	addChain("glycol-ish", []string{"O", "C", "C", "O"}, []string{"single", "single", "single"})
	addChain("butane", []string{"C", "C", "C", "C"}, []string{"single", "single", "single"})
	addChain("ammonia-chain", []string{"N", "N", "N"}, []string{"single", "single"})

	// Offline stage (Algorithm 1, Step 1): sample pairs, fit the GBD
	// prior, prepare the Jeffreys-prior workspace.
	if err := d.BuildPriors(gsim.OfflineConfig{TauMax: 4, SamplePairs: 2000}); err != nil {
		log.Fatal(err)
	}

	// The query: an ethanol-like chain with one different bond label.
	qb := d.NewGraph("query")
	c1 := qb.AddVertex("C")
	c2 := qb.AddVertex("C")
	o := qb.AddVertex("O")
	must(qb.AddEdge(c1, c2, "single"))
	must(qb.AddEdge(c2, o, "double"))
	q := qb.Query()

	res, err := d.Search(q, gsim.SearchOptions{
		Method: gsim.GBDA,
		Tau:    2,   // accept graphs within GED 2
		Gamma:  0.5, // with posterior confidence at least 0.5
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("query %q against %d graphs (%v)\n", q.Name(), res.Scanned, res.Elapsed)
	fmt.Printf("matches with Pr[GED ≤ 2 | GBD] ≥ 0.5:\n")
	for _, m := range res.Matches {
		fmt.Printf("  %-14s posterior=%.3f\n", m.Name, m.Score)
	}

	// Cross-check with exact GED (A*), feasible at this size.
	exact, err := d.Search(q, gsim.SearchOptions{Method: gsim.Exact, Tau: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exact verification (GED ≤ 2):\n")
	for _, m := range exact.Matches {
		fmt.Printf("  %-14s GED=%.0f\n", m.Name, m.Score)
	}

	// Streaming: stop the scan at the first acceptable match instead of
	// collecting everything — the "does anything similar exist?" query.
	var first gsim.Match
	_, err = d.SearchStream(context.Background(), q,
		gsim.SearchOptions{Method: gsim.GBDA, Tau: 2, Gamma: 0.5},
		func(m gsim.Match) bool {
			first = m
			return false // one hit is enough; stop the scan
		})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("first streamed hit: %s (posterior=%.3f)\n", first.Name, first.Score)

	// Multi-query batch: rank the top 3 neighbours of several queries in
	// one entry-major pass — each stored graph is scanned once for the
	// whole workload, not once per query.
	batch := []*gsim.Query{q, d.Query(0), d.Query(4)}
	ranked, err := d.SearchTopKBatch(context.Background(), batch,
		gsim.TopKOptions{Method: gsim.GBDA, K: 3, Tau: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("top-3 per query, one shared scan:\n")
	for i, r := range ranked {
		fmt.Printf("  %-14s →", batch[i].Name())
		for _, m := range r.Matches {
			fmt.Printf(" %s(%.2f)", m.Name, m.Score)
		}
		fmt.Println()
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
