// Citations: similarity search over directed, weighted graphs. The paper's
// model handles only undirected labeled simple graphs, but Section II notes
// that directions and weights fold into edge labels; this example exercises
// that folding through the public API on a toy citation-network corpus.
//
// Each graph is an ego network: a paper, the works it cites (outgoing arcs)
// and the works citing it (incoming arcs), with citation "strength" folded
// into weight buckets.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"gsim"
)

func egoNetwork(d *gsim.Database, name string, rng *rand.Rand, mutate int) *gsim.GraphBuilder {
	b := d.NewGraph(name)
	center := b.AddVertex("paper")
	wb := gsim.WeightBuckets{Min: 0, Max: 1, Buckets: 4}

	kinds := []string{"method", "survey", "dataset", "theory"}
	// Five cited works (outgoing), three citing works (incoming).
	for i := 0; i < 5; i++ {
		v := b.AddVertex(kinds[i%len(kinds)])
		if err := b.AddDirectedEdge(center, v, "cites"); err != nil {
			log.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		v := b.AddVertex(kinds[(i+1)%len(kinds)])
		if err := b.AddDirectedEdge(v, center, "cites"); err != nil {
			log.Fatal(err)
		}
	}
	// A weighted co-citation ring among the cited works.
	for i := 0; i < 4; i++ {
		w := 0.2 + 0.2*float64(i)
		if err := b.AddWeightedEdge(1+i, 2+i, w, wb); err != nil {
			log.Fatal(err)
		}
	}
	// Mutations: relabel some satellite vertices to new topics.
	alts := []string{"benchmark", "position", "tool"}
	for i := 0; i < mutate; i++ {
		v := b.AddVertex(alts[rng.Intn(len(alts))])
		if err := b.AddDirectedEdge(center, v, "cites"); err != nil {
			log.Fatal(err)
		}
	}
	return b
}

func main() {
	d := gsim.NewDatabase("citations")
	rng := rand.New(rand.NewSource(7))

	for i := 0; i < 24; i++ {
		b := egoNetwork(d, fmt.Sprintf("paper-%02d", i), rng, i%4)
		if _, err := b.Store(); err != nil {
			log.Fatal(err)
		}
	}
	if err := d.BuildPriors(gsim.OfflineConfig{TauMax: 5, SamplePairs: 3000}); err != nil {
		log.Fatal(err)
	}

	q := egoNetwork(d, "query-paper", rng, 0).Query()
	res, err := d.SearchTopK(q, gsim.TopKOptions{Method: gsim.GBDA, K: 5, Tau: 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("5 nearest ego networks to %q (directed+weighted, folded labels):\n", q.Name())
	for i, m := range res.Matches {
		fmt.Printf("  %d. %-10s posterior=%.3f\n", i+1, m.Name, m.Score)
	}

	// Direction matters: reversing every arc must push a graph away.
	rev := d.NewGraph("reversed")
	center := rev.AddVertex("paper")
	kinds := []string{"method", "survey", "dataset", "theory"}
	for i := 0; i < 5; i++ {
		v := rev.AddVertex(kinds[i%len(kinds)])
		if err := rev.AddDirectedEdge(v, center, "cites"); err != nil { // flipped
			log.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		v := rev.AddVertex(kinds[(i+1)%len(kinds)])
		if err := rev.AddDirectedEdge(center, v, "cites"); err != nil { // flipped
			log.Fatal(err)
		}
	}
	wb := gsim.WeightBuckets{Min: 0, Max: 1, Buckets: 4}
	for i := 0; i < 4; i++ {
		if err := rev.AddWeightedEdge(1+i, 2+i, 0.2+0.2*float64(i), wb); err != nil {
			log.Fatal(err)
		}
	}
	fwd := egoNetwork(d, "forward", rng, 0)
	fq, rq := fwd.Query(), rev.Query()
	same, err := d.Search(fq, gsim.SearchOptions{Method: gsim.GBDA, Tau: 2, Gamma: 0.5})
	if err != nil {
		log.Fatal(err)
	}
	flipped, err := d.Search(rq, gsim.SearchOptions{Method: gsim.GBDA, Tau: 2, Gamma: 0.5})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmatches for the original orientation: %d; for the reversed: %d\n",
		len(same.Matches), len(flipped.Matches))
	fmt.Println("(direction folding makes reversed citation flow look dissimilar)")
}
