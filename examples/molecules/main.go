// Molecules: the chemical-compound screening scenario from the paper's
// introduction. A library of ring-and-tail compounds is searched for
// analogues of a query scaffold, comparing every method the paper
// evaluates: GBDA (three γ values), the LSAP lower-bound filter,
// Greedy-Sort-GED, spectral seriation, and exact A* as ground truth.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"gsim"
)

// compound grows a 6-ring with decorated tails; mutations relabel tail
// atoms and bonds so the library contains both close analogues and
// unrelated scaffolds.
func compound(d *gsim.Database, name string, rng *rand.Rand, mutations int) {
	b := d.NewGraph(name)
	atoms := []string{"C", "C", "C", "N", "C", "C"}
	ring := make([]int, len(atoms))
	for i, a := range atoms {
		ring[i] = b.AddVertex(a)
	}
	for i := range ring {
		must(b.AddEdge(ring[i], ring[(i+1)%len(ring)], "aromatic"))
	}
	// Tails: an O on ring position 0, a C-C on position 3.
	o := b.AddVertex("O")
	must(b.AddEdge(ring[0], o, "double"))
	t1 := b.AddVertex("C")
	t2 := b.AddVertex("C")
	must(b.AddEdge(ring[3], t1, "single"))
	must(b.AddEdge(t1, t2, "single"))

	// Apply mutations: tail-atom or tail-bond relabels.
	tailAtoms := []int{o, t1, t2}
	alts := []string{"O", "N", "S", "Cl", "F"}
	for i := 0; i < mutations; i++ {
		if rng.Intn(2) == 0 {
			// Relabel a tail atom. The builder has no relabel call —
			// mutation is expressed by choosing the label up front in
			// real code; here we simply add a decorated halogen.
			h := b.AddVertex(alts[rng.Intn(len(alts))])
			must(b.AddEdge(tailAtoms[rng.Intn(len(tailAtoms))], h, "single"))
		} else {
			h := b.AddVertex("H")
			must(b.AddEdge(ring[rng.Intn(len(ring))], h, "single"))
		}
	}
	if _, err := b.Store(); err != nil {
		log.Fatal(err)
	}
}

func main() {
	d := gsim.NewDatabase("compound-library")
	rng := rand.New(rand.NewSource(42))

	// 30 analogues of the scaffold at increasing mutation depth, plus 20
	// unrelated chains.
	for i := 0; i < 30; i++ {
		compound(d, fmt.Sprintf("analog-%02d", i), rng, i%5)
	}
	for i := 0; i < 20; i++ {
		b := d.NewGraph(fmt.Sprintf("chain-%02d", i))
		prev := b.AddVertex("P")
		for j := 0; j < 8+rng.Intn(6); j++ {
			nxt := b.AddVertex([]string{"P", "S", "Si"}[rng.Intn(3)])
			must(b.AddEdge(prev, nxt, "ionic"))
			prev = nxt
		}
		if _, err := b.Store(); err != nil {
			log.Fatal(err)
		}
	}

	if err := d.BuildPriors(gsim.OfflineConfig{TauMax: 6, SamplePairs: 5000}); err != nil {
		log.Fatal(err)
	}

	// The query is the clean scaffold (mutations = 0).
	qb := d.NewGraph("scaffold-query")
	compoundInto(qb)
	q := qb.Query()

	const tau = 4
	exact, err := d.Search(q, gsim.SearchOptions{Method: gsim.Exact, Tau: tau})
	if err != nil {
		log.Fatal(err)
	}
	truth := map[int]bool{}
	for _, m := range exact.Matches {
		truth[m.Index] = true
	}
	fmt.Printf("library: %d compounds; query: scaffold; τ̂ = %d; |truth| = %d\n\n",
		d.Len(), tau, len(truth))
	fmt.Printf("%-22s %8s %8s %9s %9s\n", "method", "matches", "correct", "precision", "recall")

	report := func(label string, opt gsim.SearchOptions) {
		opt.Tau = tau
		res, err := d.Search(q, opt)
		if err != nil {
			log.Fatal(err)
		}
		correct := 0
		for _, m := range res.Matches {
			if truth[m.Index] {
				correct++
			}
		}
		prec, rec := 1.0, 1.0
		if len(res.Matches) > 0 {
			prec = float64(correct) / float64(len(res.Matches))
		}
		if len(truth) > 0 {
			rec = float64(correct) / float64(len(truth))
		}
		fmt.Printf("%-22s %8d %8d %9.3f %9.3f\n", label, len(res.Matches), correct, prec, rec)
	}
	report("GBDA(γ=0.7)", gsim.SearchOptions{Method: gsim.GBDA, Gamma: 0.7})
	report("GBDA(γ=0.8)", gsim.SearchOptions{Method: gsim.GBDA, Gamma: 0.8})
	report("GBDA(γ=0.9)", gsim.SearchOptions{Method: gsim.GBDA, Gamma: 0.9})
	report("LSAP (lower bound)", gsim.SearchOptions{Method: gsim.LSAP})
	report("Greedy-Sort-GED", gsim.SearchOptions{Method: gsim.GreedySort})
	report("seriation", gsim.SearchOptions{Method: gsim.Seriation})
	report("hybrid (GBDA+A*)", gsim.SearchOptions{Method: gsim.Hybrid, Gamma: 0.7, HybridVerifyMax: 24})
}

// compoundInto rebuilds the clean scaffold on an existing builder (the
// query is not stored in the library).
func compoundInto(b *gsim.GraphBuilder) {
	atoms := []string{"C", "C", "C", "N", "C", "C"}
	ring := make([]int, len(atoms))
	for i, a := range atoms {
		ring[i] = b.AddVertex(a)
	}
	for i := range ring {
		must(b.AddEdge(ring[i], ring[(i+1)%len(ring)], "aromatic"))
	}
	o := b.AddVertex("O")
	must(b.AddEdge(ring[0], o, "double"))
	t1 := b.AddVertex("C")
	t2 := b.AddVertex("C")
	must(b.AddEdge(ring[3], t1, "single"))
	must(b.AddEdge(t1, t2, "single"))
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
