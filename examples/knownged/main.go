// Knownged: a transparency tour of the Appendix I generator and the
// probabilistic model. It builds a cluster data set with certified pairwise
// GEDs, then shows — pair by pair — the true GED, the GBD observation, the
// GBDA posterior Pr[GED ≤ τ̂ | GBD], and what each estimator would answer.
package main

import (
	"fmt"
	"log"

	"gsim"
	"gsim/internal/dataset"
	"gsim/internal/metrics"
)

func main() {
	ds, err := dataset.Generate(dataset.Config{
		Name: "demo", NumGraphs: 40, QueryFraction: 0.1,
		MinV: 10, MaxV: 14, ExtraPerV: 0.3, ScaleFree: true,
		LV: 40, LE: 4, PoolSize: 5, ClusterSize: 10, ModSlots: 5,
		GuardTau: 6, Seed: 77,
	})
	if err != nil {
		log.Fatal(err)
	}
	d := gsim.FromCollection(ds.Col, ds.DBGraphs)
	if err := d.BuildPriors(gsim.OfflineConfig{TauMax: 6, SamplePairs: 4000}); err != nil {
		log.Fatal(err)
	}

	const tau, gamma = 3, 0.6
	qi := ds.Queries[0]
	q := d.Query(qi)
	fmt.Printf("query %d, τ̂ = %d, γ = %.1f — per-graph view of the first cluster:\n\n", qi, tau, gamma)
	fmt.Printf("%-16s %8s %10s %11s %8s\n", "graph", "trueGED", "inDB?", "posterior", "match")

	res, err := d.Search(q, gsim.SearchOptions{Method: gsim.GBDA, Tau: tau, Gamma: gamma})
	if err != nil {
		log.Fatal(err)
	}
	matched := map[int]bool{}
	for _, m := range res.Matches {
		matched[m.Index] = true
	}
	scores := map[int]float64{}
	for _, m := range res.Matches {
		scores[m.Index] = m.Score
	}
	shown := 0
	for i := 0; i < ds.Col.Len() && shown < 12; i++ {
		dist, known := ds.KnownGED(qi, i)
		if !known || i == qi {
			continue
		}
		inDB := "db"
		if !contains(ds.DBGraphs, i) {
			inDB = "query-set"
		}
		post := scores[i]
		fmt.Printf("%-16s %8d %10s %11.3f %8v\n",
			ds.Col.Graph(i).Name, dist, inDB, post, matched[i])
		shown++
	}

	// Aggregate quality over the whole query workload.
	fmt.Printf("\naggregate over %d queries at τ̂=%d:\n", len(ds.Queries), tau)
	var gbda, lsap metrics.Counts
	for _, query := range ds.Queries {
		truth := ds.TruthSet(query, tau)
		r1, err := d.Search(d.Query(query), gsim.SearchOptions{Method: gsim.GBDA, Tau: tau, Gamma: gamma})
		if err != nil {
			log.Fatal(err)
		}
		gbda.Add(metrics.Evaluate(r1.Indexes(), truth))
		r2, err := d.Search(d.Query(query), gsim.SearchOptions{Method: gsim.LSAP, Tau: tau})
		if err != nil {
			log.Fatal(err)
		}
		lsap.Add(metrics.Evaluate(r2.Indexes(), truth))
	}
	fmt.Printf("  GBDA: %v\n", gbda)
	fmt.Printf("  LSAP: %v\n", lsap)
	fmt.Println("\nThe generator certifies every intra-cluster GED (validated against")
	fmt.Println("exact A* in the test suite), so these measures are exact, not sampled.")
}

func contains(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}
