module gsim

go 1.21
