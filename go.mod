module gsim

go 1.22
